"""Multi-process delivery: one worker process per shard, framed sockets between.

:class:`SocketTransport` is the first transport whose message plane leaves
the coordinator process.  PR 5 made the shard the unit of endpoint ownership
(``bind(..., shard=k)`` / ``endpoints(shard=k)``); this transport routes each
shard namespace to its own worker process (:mod:`repro.net.worker`), spawned
lazily on the shard's first bind and connected over an inherited
``socket.socketpair()``.  Every envelope crossing the transport is serialized
to a length-prefixed msgpack frame (:mod:`repro.net.framing`) and carried to
the destination shard's worker, which decodes, sequence-checks and
acknowledges it — so the wire-plane work (serialization, framing, protocol
validation) runs on the workers' cores while the coordinator keeps running
the handlers.

Delivery semantics mirror :class:`~repro.net.batching.BatchingTransport`
exactly, which is what makes the multi-process run *bit-identical* to inline
(the registry claims — and the golden harness enforces — both
``exact_equivalence`` and ``churn_equivalence``):

* **Request/reply** — the route is resolved through a per-window cache that
  replays the cached hop charge; the encoded envelope travels to the owner
  shard's worker as a REQ frame stamped with the connection's next sequence
  number, and the worker's REP must agree with the coordinator's own view of
  the endpoint's bound state before the handler runs.
* **One-way batching** — :meth:`post` queues envelopes per destination (the
  batching transport's outbox, reused as wire-level message packing);
  :meth:`flush` first ships every destination's batch to its owner worker as
  one one-way BATCH frame — all shards decode concurrently — then dispatches
  locally in sorted-destination order with a per-envelope bound recheck
  (drop-and-count, never a crash, even when a handler unbinds its own
  endpoint mid-batch).

Handler execution stays in the coordinator: :class:`~repro.core.protocol.\
ClashSystem` shares mutable server state across shard boundaries (splits,
handoffs, the balance pass), so moving handlers out-of-process is a separate
project — see ROADMAP.  What the workers parallelize today is the wire plane,
which is also what they will need once handlers migrate.

Requires a POSIX ``fork`` start method (inherited sockets, sub-millisecond
spawn); construction fails with a clear error elsewhere.
"""

from __future__ import annotations

import multiprocessing
import os
import socket as socket_module

from repro.net.envelope import Delivery, Envelope
from repro.net.framing import FrameError, encode_value, read_frame, write_frame
from repro.net.transport import Transport, TransportError
from repro.net.worker import (
    MSG_BATCH,
    MSG_BIND,
    MSG_BYE,
    MSG_CLOSE,
    MSG_ERROR,
    MSG_HELLO,
    MSG_REP,
    MSG_REQ,
    MSG_STATS,
    MSG_STATS_REPLY,
    MSG_UNBIND,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    worker_main,
)

__all__ = ["SocketTransport"]

_CLOSE_TIMEOUT = 10.0
"""Seconds to wait for a worker's BYE and process exit before terminating it
(a worker is a decode loop — anything this slow is wedged)."""


class _WorkerHandle:
    """Coordinator-side endpoint of one shard worker's connection."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        parent_sock, child_sock = socket_module.socketpair()
        context = multiprocessing.get_context("fork")
        self.process = context.Process(
            target=worker_main,
            args=(child_sock, shard),
            name=f"clash-shard-{shard}",
            daemon=True,
        )
        self.process.start()
        child_sock.close()
        self.sock = parent_sock
        self.seq = 0
        self.closed = False
        write_frame(self.sock, [MSG_HELLO, shard, PROTOCOL_VERSION])
        welcome = self._read()
        if welcome[0] != MSG_WELCOME:
            raise TransportError(
                f"shard {shard} worker failed its handshake: {welcome!r}"
            )
        self.pid = welcome[1]

    def _read(self) -> list:
        try:
            frame = read_frame(self.sock)
        except FrameError as error:
            raise TransportError(
                f"shard {self.shard} worker stream broke: {error}"
            ) from error
        if frame is None:
            raise TransportError(
                f"shard {self.shard} worker (pid {self.process.pid}) closed "
                "its connection unexpectedly"
            )
        if isinstance(frame, list) and frame and frame[0] == MSG_ERROR:
            raise TransportError(
                f"shard {self.shard} worker reported a protocol error: {frame[1]}"
            )
        return frame

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def send(self, frame: list) -> None:
        try:
            write_frame(self.sock, frame)
        except (FrameError, OSError) as error:
            raise TransportError(
                f"sending to shard {self.shard} worker failed: {error}"
            ) from error

    def roundtrip(self, frame: list, reply_kind: int) -> list:
        """Send a sequenced frame and read its matching reply."""
        seq = frame[1]
        self.send(frame)
        reply = self._read()
        if reply[0] != reply_kind or reply[1] != seq:
            raise TransportError(
                f"shard {self.shard} worker answered out of sequence: sent "
                f"seq {seq}, got {reply!r}"
            )
        return reply

    def stats(self) -> dict:
        return self.roundtrip([MSG_STATS, self.next_seq()], MSG_STATS_REPLY)[2]

    def close(self) -> dict | None:
        """CLOSE/BYE handshake, then join (terminate if wedged)."""
        if self.closed:
            return None
        self.closed = True
        counters: dict | None = None
        try:
            write_frame(self.sock, [MSG_CLOSE])
            self.sock.settimeout(_CLOSE_TIMEOUT)
            bye = read_frame(self.sock)
            if isinstance(bye, list) and bye and bye[0] == MSG_BYE:
                counters = bye[1]
        except (FrameError, OSError):  # worker already gone; join below
            pass
        finally:
            self.sock.close()
        self.process.join(timeout=_CLOSE_TIMEOUT)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout=_CLOSE_TIMEOUT)
        if not self.process.is_alive():
            self.process.close()
        return counters


class SocketTransport(Transport):
    """Per-shard worker processes speaking length-prefixed msgpack frames."""

    def __init__(self) -> None:
        if not hasattr(os, "fork"):
            raise TransportError(
                "the socket transport needs a POSIX fork start method to hand "
                "inherited socketpairs to its shard workers"
            )
        super().__init__()
        self._workers: dict[int, _WorkerHandle] = {}
        self._route_cache: dict[tuple[int, int], tuple[str, int]] = {}
        self._outbox: dict[str, list[Envelope]] = {}
        self._deferred = 0
        self.route_cache_hits = 0
        self.batches_flushed = 0
        #: Final per-shard counter maps collected from the BYE handshake at
        #: :meth:`close` (tests and the benchmark read them post-run).
        self.final_worker_stats: dict[int, dict] = {}

    # ------------------------------------------------------------------ #
    # Worker management
    # ------------------------------------------------------------------ #

    def _worker_shard(self, name: str) -> int:
        """The worker that owns endpoint ``name`` (untagged names → shard 0)."""
        return self._endpoint_shards.get(name, 0)

    def _worker(self, shard: int) -> _WorkerHandle:
        if self.closed:
            raise TransportError("the socket transport is closed")
        handle = self._workers.get(shard)
        if handle is None:
            handle = _WorkerHandle(shard)
            self._workers[shard] = handle
        return handle

    def worker_pids(self) -> dict[int, int]:
        """Live worker process ids by shard (diagnostics and tests)."""
        return {
            shard: handle.pid
            for shard, handle in self._workers.items()
            if not handle.closed
        }

    def socket_stats(self) -> dict[int, dict]:
        """Current per-shard worker counters (a STATS round-trip per shard)."""
        return {
            shard: handle.stats()
            for shard, handle in sorted(self._workers.items())
            if not handle.closed
        }

    # ------------------------------------------------------------------ #
    # Endpoint management (mirrored to the owning worker)
    # ------------------------------------------------------------------ #

    def bind(self, name: str, handler, shard: int | None = None) -> None:
        super().bind(name, handler, shard=shard)
        self._worker(self._worker_shard(name)).send([MSG_BIND, name])

    def unbind(self, name: str) -> None:
        # Resolve the owner before the base class forgets the shard tag.
        shard = self._worker_shard(name)
        was_bound = self.is_bound(name)
        super().unbind(name)
        if was_bound:
            handle = self._workers.get(shard)
            if handle is not None and not handle.closed:
                handle.send([MSG_UNBIND, name])

    # ------------------------------------------------------------------ #
    # Route coalescing (identical to BatchingTransport)
    # ------------------------------------------------------------------ #

    def resolve(self, virtual_key) -> tuple[str, int]:
        """Resolve through the window's route cache (miss → real DHT walk).

        The hop charge is replayed from the cache, so message accounting is
        bit-identical to inline — the same contract (and proof obligation) as
        :meth:`repro.net.batching.BatchingTransport.resolve`.
        """
        cache_key = (virtual_key.value, virtual_key.width)
        cached = self._route_cache.get(cache_key)
        if cached is not None:
            self.route_cache_hits += 1
            return cached
        route = super().resolve(virtual_key)
        self._route_cache[cache_key] = route
        return route

    def invalidate_routes(self) -> None:
        self._route_cache.clear()

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #

    def request(self, envelope: Envelope) -> Delivery:
        server, hops = self._route(envelope)
        handle = self._worker(self._worker_shard(server))
        reply_frame = handle.roundtrip(
            [MSG_REQ, handle.next_seq(), server, encode_value(envelope)], MSG_REP
        )
        worker_bound = reply_frame[2]
        if worker_bound != self.is_bound(server):
            raise TransportError(
                f"bound-state divergence for {server!r}: the shard "
                f"{handle.shard} worker says {worker_bound}, the coordinator "
                f"says {self.is_bound(server)}"
            )
        reply = self._dispatch(server, envelope)
        return Delivery(server=server, hops=hops, reply=reply)

    def post(self, envelope: Envelope) -> Delivery:
        """Queue a one-way envelope for wire-packed delivery at the next flush.

        The route (and the hop charge) is resolved immediately, exactly as
        the batching transport does, so accounting is flush-schedule
        independent.
        """
        server, hops = self._route(envelope)
        self._outbox.setdefault(server, []).append(envelope)
        self._deferred += 1
        return Delivery(server=server, hops=hops)

    @property
    def pending(self) -> int:
        """Number of queued one-way envelopes awaiting the next flush."""
        return self._deferred

    def flush(self) -> int:
        """Ship every destination's batch to its owner worker, then dispatch.

        The wire phase sends all BATCH frames before any local dispatch runs:
        each frame is one-way, so every shard's worker decodes its batches in
        parallel with the others — and with the coordinator's own dispatch
        loop below.  The dispatch loop is bit-for-bit the (fixed) batching
        transport's: sorted destinations, per-envelope bound recheck,
        unbound envelopes dropped and counted.
        """
        outbox, self._outbox = self._outbox, {}
        self._deferred = 0
        for server in sorted(outbox):
            if not self.is_bound(server):
                continue  # dropped (and counted) in the dispatch loop below
            handle = self._worker(self._worker_shard(server))
            handle.send(
                [
                    MSG_BATCH,
                    handle.next_seq(),
                    server,
                    [encode_value(envelope) for envelope in outbox[server]],
                ]
            )
        delivered = 0
        for server in sorted(outbox):
            for envelope in outbox[server]:
                if not self.is_bound(server):
                    self.dropped_messages += 1
                    continue
                self._dispatch(server, envelope)
                delivered += 1
        if delivered:
            self.batches_flushed += 1
        self._route_cache.clear()
        return delivered

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """CLOSE/BYE every worker, join the processes (idempotent)."""
        if self.closed:
            return
        super().close()
        for shard, handle in sorted(self._workers.items()):
            counters = handle.close()
            if counters is not None:
                self.final_worker_stats[shard] = counters

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
