"""The per-shard worker process behind :class:`~repro.net.socket_transport.SocketTransport`.

One worker owns one shard's wire plane.  The coordinator (the process running
:class:`~repro.core.protocol.ClashSystem`) connects to it over an inherited
``socket.socketpair()`` and speaks the framed protocol below; the worker
decodes, validates and acknowledges every envelope addressed to its shard —
the full serialization cost of the message plane runs on the worker's core,
concurrently across shards during batch flushes.

Wire protocol (every frame is one length-prefixed msgpack array; see
:mod:`repro.net.framing`):

====================  ==========================================  =========
frame                 layout                                      direction
====================  ==========================================  =========
HELLO                 ``[0, shard, protocol_version]``            coord → w
WELCOME               ``[1, pid]``                                w → coord
BIND                  ``[2, name]`` (one-way)                     coord → w
UNBIND                ``[3, name]`` (one-way)                     coord → w
REQ                   ``[4, seq, server, envelope]``              coord → w
REP                   ``[5, seq, bound]``                         w → coord
BATCH                 ``[6, seq, server, [envelope, ...]]``       coord → w
                      (one-way)
STATS                 ``[7, seq]``                                coord → w
STATS_REPLY           ``[8, seq, counters]``                      w → coord
CLOSE                 ``[9]``                                     coord → w
BYE                   ``[10, counters]``                          w → coord
ERROR                 ``[11, message]``                           w → coord
====================  ==========================================  =========

Sequencing follows the MoaT/distkv server idiom: the coordinator stamps
every sequenced frame (REQ, BATCH, STATS) with a per-connection counter that
must increase by exactly one, and the worker *asserts* that monotonicity —
a gap or replay means the stream framing drifted, and the worker reports an
ERROR frame and exits rather than process a desynchronized stream.

The worker keeps a mirror of its shard's bound endpoints, maintained by the
one-way BIND/UNBIND control frames the coordinator emits in lockstep with
its own endpoint table.  A REQ's reply carries the mirror's verdict so the
coordinator can cross-check both sides of the bound state on every
request/reply exchange.
"""

from __future__ import annotations

import os

from repro.net.framing import FrameError, decode_value, read_frame, write_frame

__all__ = [
    "PROTOCOL_VERSION",
    "MSG_HELLO",
    "MSG_WELCOME",
    "MSG_BIND",
    "MSG_UNBIND",
    "MSG_REQ",
    "MSG_REP",
    "MSG_BATCH",
    "MSG_STATS",
    "MSG_STATS_REPLY",
    "MSG_CLOSE",
    "MSG_BYE",
    "MSG_ERROR",
    "worker_main",
]

PROTOCOL_VERSION = 1

MSG_HELLO = 0
MSG_WELCOME = 1
MSG_BIND = 2
MSG_UNBIND = 3
MSG_REQ = 4
MSG_REP = 5
MSG_BATCH = 6
MSG_STATS = 7
MSG_STATS_REPLY = 8
MSG_CLOSE = 9
MSG_BYE = 10
MSG_ERROR = 11


class _ProtocolViolation(RuntimeError):
    """The coordinator broke the framed protocol (bad seq, unknown frame)."""


class _ShardWorker:
    """State of one worker process: bound-endpoint mirror plus counters."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.bound: set[str] = set()
        self.last_seq = 0
        self.counters = {
            "frames_received": 0,
            "envelopes_decoded": 0,
            "requests_served": 0,
            "batches_received": 0,
            "binds": 0,
            "unbinds": 0,
        }

    def check_seq(self, seq: object) -> None:
        if not isinstance(seq, int) or seq != self.last_seq + 1:
            raise _ProtocolViolation(
                f"shard {self.shard} worker expected seq {self.last_seq + 1}, "
                f"got {seq!r}"
            )
        self.last_seq = seq

    def handle(self, frame: object, sock) -> bool:
        """Process one frame; returns False when the connection should end."""
        if not isinstance(frame, list) or not frame:
            raise _ProtocolViolation(f"malformed frame: {frame!r}")
        kind = frame[0]
        self.counters["frames_received"] += 1
        if kind == MSG_BIND:
            self.bound.add(frame[1])
            self.counters["binds"] += 1
        elif kind == MSG_UNBIND:
            self.bound.discard(frame[1])
            self.counters["unbinds"] += 1
        elif kind == MSG_REQ:
            _, seq, server, encoded = frame
            self.check_seq(seq)
            decode_value(encoded)  # full envelope validation on this core
            self.counters["envelopes_decoded"] += 1
            self.counters["requests_served"] += 1
            write_frame(sock, [MSG_REP, seq, server in self.bound])
        elif kind == MSG_BATCH:
            _, seq, _server, batch = frame
            self.check_seq(seq)
            for encoded in batch:
                decode_value(encoded)
            self.counters["envelopes_decoded"] += len(batch)
            self.counters["batches_received"] += 1
        elif kind == MSG_STATS:
            _, seq = frame
            self.check_seq(seq)
            write_frame(sock, [MSG_STATS_REPLY, seq, dict(self.counters)])
        elif kind == MSG_CLOSE:
            write_frame(sock, [MSG_BYE, dict(self.counters)])
            return False
        else:
            raise _ProtocolViolation(f"unknown frame type {kind!r}")
        return True


def worker_main(sock, shard: int) -> None:
    """Entry point of the worker process (the ``multiprocessing`` target).

    Blocks on the inherited socket until the coordinator sends CLOSE (clean
    BYE handshake), the connection drops (clean exit — the coordinator died),
    or the protocol is violated (ERROR frame, non-zero exit).
    """
    worker = _ShardWorker(shard)
    try:
        hello = read_frame(sock)
        if (
            not isinstance(hello, list)
            or len(hello) != 3
            or hello[0] != MSG_HELLO
            or hello[1] != shard
            or hello[2] != PROTOCOL_VERSION
        ):
            raise _ProtocolViolation(f"bad handshake: {hello!r}")
        write_frame(sock, [MSG_WELCOME, os.getpid()])
        while True:
            frame = read_frame(sock)
            if frame is None:  # coordinator vanished without CLOSE
                break
            if not worker.handle(frame, sock):
                break
    except (_ProtocolViolation, FrameError) as error:
        try:
            write_frame(sock, [MSG_ERROR, str(error)])
        except OSError:
            pass
        sock.close()
        raise SystemExit(1)
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
