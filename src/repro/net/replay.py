"""Schedule recording and forced-order replay for the adversarial fuzzer.

The async transport's delivery order is a pure function of the *tie-break
tape*: every ``send`` draws one tie-break value from the transport's ready
source, and simultaneously-ready envelopes are released in tie-break order
(:class:`~repro.net.asyncio_transport.AsyncTransport`).  Recording those
draws therefore records the whole envelope-level schedule, and replaying the
tape forces the exact same delivery order — bit for bit, without storing a
single envelope.

Three small pieces make that a replayable trace:

* :class:`TieRecorder` — wraps the live ready source and remembers every
  draw (the fuzzer installs it before a recorded run).
* :class:`TieTape` — replays a (possibly *masked*) recording: entries kept
  by the shrinker return their recorded value, everything else returns
  ``0.0``, the FIFO default.  Masking a tie is how delta debugging removes
  one reordering decision from a failing schedule.
* :class:`ReplayTransport` — an :class:`AsyncTransport` whose ready source
  is a :class:`TieTape`; registered in :data:`repro.net.TRANSPORTS` as
  ``"replay"``.  With an empty tape it degrades to deterministic FIFO
  delivery and passes the full golden-equivalence battery like any other
  transport.

Membership churn is the second scheduled dimension: a recorded run's
executed join/failure events are captured as :class:`ChurnEvent` records
(with the drawn node id / victim pinned), and
:class:`~repro.sim.simulator.FlowSimulator` replays a
:class:`ReplaySchedule`'s churn list verbatim instead of drawing fresh
Poisson arrivals.

Partition rebalances are the third: an adaptive-partition run's installed
maps are captured as :class:`RebalanceEvent` records (boundaries and version
pinned), and a schedule carrying them replays those maps verbatim instead of
recomputing boundaries from observed load.  The recompute is itself a pure
function of the workload measure, so recorded and recomputed maps agree on
an unshrunk schedule — pinning exists so shrunk schedules keep the exact
failing partition history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.net.asyncio_transport import AsyncTransport
from repro.net.latency import LatencyModel

__all__ = [
    "ChurnEvent",
    "RebalanceEvent",
    "ReplaySchedule",
    "ReplayTransport",
    "TieRecorder",
    "TieTape",
]


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One executed membership event, pinned for bit-identical replay.

    Attributes:
        when: Simulation time the event fired at (decides which period — or
            which engine instant — replays it).
        kind: ``"join"`` or ``"fail"``.
        server: The joiner's name, or the failure victim.
        node_id: The joiner's drawn DHT node id (``None`` for failures).
            Pinning it means replay never touches the arrival RNG streams.
    """

    when: float
    kind: str
    server: str
    node_id: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("join", "fail"):
            raise ValueError(f"churn event kind must be 'join' or 'fail', got {self.kind!r}")

    def to_json(self) -> list:
        """A JSON-ready representation (stable field order)."""
        return [self.when, self.kind, self.server, self.node_id]

    @classmethod
    def from_json(cls, data: Sequence) -> "ChurnEvent":
        when, kind, server, node_id = data
        return cls(when=float(when), kind=kind, server=server, node_id=node_id)


@dataclass(frozen=True, slots=True)
class RebalanceEvent:
    """One installed partition map, pinned for bit-identical replay.

    Attributes:
        when: Simulation time (period boundary) the map was installed at.
        version: The installed map's version (strictly increasing per run).
        boundaries: The installed map's shard boundaries, verbatim.
    """

    when: float
    version: int
    boundaries: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"rebalance version must be >= 1, got {self.version}")

    def to_json(self) -> list:
        """A JSON-ready representation (stable field order)."""
        return [self.when, self.version, list(self.boundaries)]

    @classmethod
    def from_json(cls, data: Sequence) -> "RebalanceEvent":
        when, version, boundaries = data
        return cls(
            when=float(when),
            version=int(version),
            boundaries=tuple(int(value) for value in boundaries),
        )


@dataclass(frozen=True)
class ReplaySchedule:
    """A recorded (possibly shrunk) schedule a run can be forced onto.

    Attributes:
        ties: Sparse tie-break tape — draw index to recorded value.  Indices
            absent from the mapping (masked by the shrinker, or beyond the
            recording) draw the FIFO default ``0.0``.
        churn: The membership events to execute, verbatim, instead of
            drawing Poisson arrivals.  ``None`` leaves the simulator's own
            churn model in charge (tape-only replay).
        rebalances: The partition maps to install, verbatim, instead of
            recomputing boundaries from observed load.  ``None`` leaves the
            simulator's live rebalance step in charge.
    """

    ties: Mapping[int, float] = field(default_factory=dict)
    churn: tuple[ChurnEvent, ...] | None = None
    rebalances: tuple[RebalanceEvent, ...] | None = None

    @classmethod
    def full(
        cls,
        ties: Sequence[float],
        churn: Sequence[ChurnEvent] | None,
        rebalances: Sequence[RebalanceEvent] | None = None,
    ) -> "ReplaySchedule":
        """The unshrunk schedule: every recorded tie, churn and rebalance kept."""
        return cls(
            ties={index: value for index, value in enumerate(ties)},
            churn=None if churn is None else tuple(churn),
            rebalances=None if rebalances is None else tuple(rebalances),
        )


class TieRecorder:
    """Records every tie-break draw while passing it through unchanged.

    Wraps whatever ready source the transport already has (a seeded
    :class:`~repro.util.rng.RandomStream`, or ``None`` for FIFO) so a
    recorded run behaves exactly like an unrecorded one.
    """

    def __init__(self, source=None) -> None:
        self._source = source
        self.draws: list[float] = []

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        value = self._source.uniform(low, high) if self._source is not None else 0.0
        self.draws.append(value)
        return value


class TieTape:
    """Replays a sparse tie-break recording in draw order.

    Draw ``i`` returns ``ties[i]`` when the shrinker kept that entry and the
    FIFO default ``0.0`` otherwise, so a fully masked tape is exactly
    send-order delivery.  The effective draws are kept in :attr:`draws` for
    oracles that inspect the schedule.
    """

    def __init__(self, ties: Mapping[int, float] | None = None) -> None:
        self._ties = dict(ties) if ties else {}
        self.draws: list[float] = []

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        value = self._ties.get(len(self.draws), 0.0)
        self.draws.append(value)
        return value


class ReplayTransport(AsyncTransport):
    """An async transport whose delivery order is forced by a recorded tape.

    Args:
        schedule: The schedule to force (only its :attr:`ReplaySchedule.ties`
            tape concerns the transport; churn replay is the simulator's
            job).  ``None`` — or an empty tape — yields deterministic FIFO
            delivery.
        latency: Latency model, exactly as for :class:`AsyncTransport`.
    """

    def __init__(
        self,
        schedule: ReplaySchedule | None = None,
        latency: LatencyModel | None = None,
    ) -> None:
        # NB: AsyncTransport uses ``_schedule`` as its calendar-insert
        # method; the forced schedule must live under a different name.
        self._replay_schedule = schedule if schedule is not None else ReplaySchedule()
        super().__init__(latency=latency, ready_rng=TieTape(self._replay_schedule.ties))

    @property
    def schedule(self) -> ReplaySchedule:
        """The schedule this transport is forcing."""
        return self._replay_schedule
