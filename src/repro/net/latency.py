"""Latency models for the event-driven transport.

A latency model answers one question: how long does an envelope take from
``source`` to ``destination`` given that the DHT took ``hops`` overlay hops to
resolve the route?  Three models cover the scenarios the experiments need:

* :class:`ConstantLatency` — every link takes the same time (the classic
  "uniform datacentre" assumption).
* :class:`UniformLatency` — per-message jitter drawn from a seeded stream, so
  runs stay reproducible.
* :class:`PerHopLatency` — cost proportional to the Chord routing path, which
  is what makes O(log S) lookups visibly more expensive than direct
  cached-server deliveries.
"""

from __future__ import annotations

from typing import Protocol

from repro.util.rng import RandomStream
from repro.util.validation import check_non_negative

__all__ = [
    "LatencyModel",
    "ZeroLatency",
    "ConstantLatency",
    "UniformLatency",
    "PerHopLatency",
]


class LatencyModel(Protocol):
    """Anything that can price a single envelope delivery in seconds."""

    def sample(self, source: str, destination: str, hops: int) -> float:
        """Latency of one delivery from ``source`` to ``destination``."""
        ...


class ZeroLatency:
    """Instantaneous delivery (event ordering without time cost)."""

    def sample(self, source: str, destination: str, hops: int) -> float:
        return 0.0


class ConstantLatency:
    """Every delivery takes exactly ``delay`` seconds."""

    def __init__(self, delay: float) -> None:
        check_non_negative("delay", delay)
        self._delay = delay

    @property
    def delay(self) -> float:
        """The fixed per-delivery latency in seconds."""
        return self._delay

    def sample(self, source: str, destination: str, hops: int) -> float:
        return self._delay


class UniformLatency:
    """Delivery time drawn uniformly from ``[low, high]`` (seeded)."""

    def __init__(self, low: float, high: float, rng: RandomStream) -> None:
        check_non_negative("low", low)
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self._low = low
        self._high = high
        self._rng = rng

    def sample(self, source: str, destination: str, hops: int) -> float:
        return self._rng.uniform(self._low, self._high)


class PerHopLatency:
    """A base delay plus a per-Chord-hop forwarding cost.

    DHT-resolved envelopes traverse ``hops`` overlay links before reaching
    their owner; direct (cached-server) envelopes have ``hops == 0`` and pay
    only the base delay.  This is the model that reproduces the paper's
    motivation for client-side caching: lookups cost O(log S) link latencies,
    cached data packets cost one.
    """

    def __init__(self, base: float, per_hop: float) -> None:
        check_non_negative("base", base)
        check_non_negative("per_hop", per_hop)
        self._base = base
        self._per_hop = per_hop

    def sample(self, source: str, destination: str, hops: int) -> float:
        return self._base + self._per_hop * hops
