"""Event-driven delivery through the discrete-event simulation engine.

:class:`EventTransport` finally unifies the two execution models the seed
shipped with: the protocol layer sends envelopes, and every delivery becomes a
:class:`~repro.sim.engine.SimulationEngine` event fired at
``now + latency(source, destination, hops)``.  Request/reply exchanges pump
the engine until the reply lands, so the protocol code stays synchronous while
the simulation clock advances with the traffic — packet-level latency and
churn scenarios run on the *real* protocol rather than a parallel flow model.

Determinism: the engine orders simultaneous events by schedule sequence, and
all jitter comes from seeded :class:`~repro.util.rng.RandomStream` instances,
so two runs with the same seed deliver the same envelopes in the same order at
the same times.
"""

from __future__ import annotations

from repro.net.envelope import Delivery, Envelope
from repro.net.latency import LatencyModel, ZeroLatency
from repro.net.transport import DeliveryFailed, Transport, TransportError
from repro.sim.engine import SimulationEngine

__all__ = ["EventTransport"]


class EventTransport(Transport):
    """Routes every envelope through a simulation-engine event.

    Args:
        engine: The event kernel deliveries are scheduled on; a private engine
            is created when none is supplied (convenient for tests).
        latency: Prices each delivery in seconds of simulated time.
    """

    def __init__(
        self,
        engine: SimulationEngine | None = None,
        latency: LatencyModel | None = None,
    ) -> None:
        super().__init__()
        self._engine = engine if engine is not None else SimulationEngine()
        self._latency = latency if latency is not None else ZeroLatency()
        self._in_flight = 0
        self._latency_samples: list[float] = []

    @property
    def engine(self) -> SimulationEngine:
        """The event kernel this transport schedules deliveries on."""
        return self._engine

    @property
    def latency_model(self) -> LatencyModel:
        """The current latency model."""
        return self._latency

    def set_latency_model(self, latency: LatencyModel) -> None:
        """Swap the latency model (scenario phases may override it)."""
        self._latency = latency

    # ------------------------------------------------------------------ #
    # Latency metrics
    # ------------------------------------------------------------------ #

    def drain_latency_samples(self) -> list[float]:
        """Per-delivery (one-way) latencies recorded since the last drain.

        A request/reply exchange contributes two samples — the forward leg
        and the reply leg — so the mean is a per-message delivery latency,
        commensurate with the one-way samples posts record.
        """
        samples = self._latency_samples
        self._latency_samples = []
        return samples

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #

    def request(self, envelope: Envelope) -> Delivery:
        """Deliver an envelope and run the engine until its reply arrives.

        The request travels for one latency sample, the handler fires as an
        engine event, and the reply travels back for another sample; the
        engine clock advances by the round trip.

        Raises :class:`~repro.net.transport.DeliveryFailed` when the
        destination endpoint unbinds (server failure) while the request is in
        flight: the exchange is cancelled and the lost request counted in
        :attr:`dropped_messages`, exactly as a one-way post would be.
        """
        server, hops = self._route(envelope)
        forward = self._latency.sample(envelope.source, server, hops)
        backward = self._latency.sample(server, envelope.source, 0)
        outcome: dict[str, object] = {}

        def deliver(now: float) -> None:
            if self.log_deliveries:
                self.delivery_log.append((now, server, type(envelope.payload).__name__))
            if not self.is_bound(server):
                self.dropped_messages += 1
                outcome["failed"] = True
                return
            outcome["reply"] = self._dispatch(server, envelope)

        self._engine.schedule_in(forward, deliver, label=f"deliver->{server}")
        self._pump(lambda: bool(outcome))
        if "reply" not in outcome:
            # No reply leg: the request died on the forward leg.
            self._latency_samples.append(forward)
            raise DeliveryFailed(server, envelope)
        self._engine.run_until(self._engine.now + backward)
        self._latency_samples.append(forward)
        self._latency_samples.append(backward)
        return Delivery(
            server=server, hops=hops, reply=outcome["reply"], latency=forward + backward
        )

    def post(self, envelope: Envelope) -> Delivery:
        """Schedule a one-way delivery; it fires when the engine reaches it."""
        server, hops = self._route(envelope)
        delay = self._latency.sample(envelope.source, server, hops)
        self._in_flight += 1

        def deliver(now: float) -> None:
            if self.log_deliveries:
                self.delivery_log.append((now, server, type(envelope.payload).__name__))
            try:
                # An endpoint unbound after scheduling (the server failed
                # with this message in flight) drops the envelope like a real
                # network instead of aborting the whole simulation run.  Only
                # that case is a drop: a *handler* raising TransportError is
                # a programming error and still propagates.
                if not self.is_bound(server):
                    self.dropped_messages += 1
                    return
                self._dispatch(server, envelope)
            finally:
                self._in_flight -= 1

        self._engine.schedule_in(delay, deliver, label=f"post->{server}")
        self._latency_samples.append(delay)
        return Delivery(server=server, hops=hops, latency=delay)

    def flush(self) -> int:
        """Run the engine until every posted envelope has been delivered."""
        flushed = self._in_flight
        self._pump(lambda: self._in_flight == 0)
        return flushed

    def _pump(self, done) -> None:
        """Fire engine events in time order until ``done()`` becomes true."""
        guard = 0
        while not done():
            next_time = self._engine.peek_time()
            if next_time is None:
                raise TransportError(
                    "event transport stalled: waiting for a delivery but the "
                    "engine calendar is empty"
                )
            self._engine.run_until(next_time, max_events=1)
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - safety net
                raise TransportError("event transport did not converge")
