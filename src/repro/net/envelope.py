"""Envelopes: the unit of traffic every CLASH transport carries.

Every inter-node exchange — ``ACCEPT_OBJECT`` probes, ``ACCEPT_KEYGROUP``
transfers, ``LOAD_REPORT`` deliveries, ``RELEASE_KEYGROUP`` requests — is
wrapped in an :class:`Envelope` and handed to a
:class:`~repro.net.transport.Transport`.  The destination is either the name
of a concrete server endpoint or a :class:`DhtAddress`, in which case the
transport resolves the owner through the underlying DHT (and reports the
routing hops taken so the caller can charge them).

Envelopes are deliberately tiny frozen records (``slots=True``): the depth
discovery hot path creates one per probe, so per-envelope allocation cost
matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import MessageCategory
from repro.keys.identifier import IdentifierKey

__all__ = ["DhtAddress", "Envelope", "Delivery"]


@dataclass(frozen=True, slots=True)
class DhtAddress:
    """A destination addressed by a virtual key rather than a server name.

    The transport resolves the owner through the DHT (``Map(f(key))`` in the
    paper) at delivery time; the resolved owner and the hop count travel back
    in the :class:`Delivery`.

    Attributes:
        virtual_key: The identifier key whose DHT owner should receive the
            envelope.
    """

    virtual_key: IdentifierKey


@dataclass(frozen=True, slots=True)
class Envelope:
    """One protocol message in flight between two endpoints.

    Attributes:
        source: Name of the sending endpoint (client or server).
        destination: Receiving endpoint — a server name, or a
            :class:`DhtAddress` to be resolved through the DHT.
        payload: The protocol message (one of the dataclasses in
            :mod:`repro.core.messages`).
        category: Accounting category of the message, when the caller wants
            the transport's counters broken down (the protocol layer keeps its
            own :class:`~repro.core.messages.MessageStats`; this field exists
            for transport-level introspection and tracing).
        attachment: Bulk state riding along with the message (e.g. the list of
            persistent queries migrated by an ``ACCEPT_KEYGROUP``).  Kept out
            of the frozen payload so message types stay cheap value objects.
    """

    source: str
    destination: str | DhtAddress
    payload: object
    category: MessageCategory | None = None
    attachment: object | None = None


@dataclass(frozen=True, slots=True)
class Delivery:
    """The outcome of handing an envelope to a transport.

    Attributes:
        server: Name of the endpoint the envelope was (or will be) delivered
            to, after any DHT resolution.
        hops: DHT routing hops taken to resolve the destination (0 for
            envelopes addressed directly to a server name).
        reply: The receiving handler's return value for request/reply
            exchanges; ``None`` for one-way envelopes.
        latency: Simulated end-to-end latency of the exchange in seconds
            (0 for transports that do not model time).
    """

    server: str
    hops: int
    reply: object | None = None
    latency: float = 0.0
