"""Synchronous in-process delivery: the default transport.

:class:`InlineTransport` dispatches every envelope to its endpoint handler
immediately, on the caller's stack, exactly as the pre-transport code called
server methods directly.  It adds no queuing, no clock and no reordering, so
a deployment running on it reproduces the original execution bit for bit —
same replies, same DHT hop charges, same split/merge sequences.
"""

from __future__ import annotations

from repro.net.envelope import Delivery, Envelope
from repro.net.transport import Transport

__all__ = ["InlineTransport"]


class InlineTransport(Transport):
    """Zero-overhead synchronous dispatch (the original call semantics)."""

    def request(self, envelope: Envelope) -> Delivery:
        server, hops = self._route(envelope)
        reply = self._dispatch(server, envelope)
        return Delivery(server=server, hops=hops, reply=reply)

    def post(self, envelope: Envelope) -> Delivery:
        server, hops = self._route(envelope)
        self._dispatch(server, envelope)
        return Delivery(server=server, hops=hops)
