"""The single source of truth for which transports exist.

Every surface that enumerates transports — the CLI ``--transport`` choices,
:class:`~repro.sim.simulator.SimulationParams` /
:class:`~repro.experiments.runner.ExperimentScale` validation,
:func:`repro.net.build_transport` construction and the test suite's
equivalence parametrization — derives from :data:`TRANSPORTS` instead of
maintaining its own list.  Adding a transport means adding one
:class:`TransportSpec` here; everything else follows.

Each spec also records the *equivalence contract* the transport makes, which
is what the golden test harness (``tests/net/equivalence.py``) enforces:

* ``exact_equivalence`` — with a zero-latency model, a flow simulation on
  this transport produces :class:`~repro.sim.metrics.PeriodSample` streams
  bit-identical to :class:`~repro.net.inline.InlineTransport`.
* ``churn_equivalence`` — the same holds under period-boundary membership
  churn.  The event transport executes churn *mid-phase* on its engine clock
  (a deliberately different, more realistic schedule), so it opts out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.net.batching import BatchingTransport
from repro.net.inline import InlineTransport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.latency import LatencyModel
    from repro.net.transport import Transport
    from repro.sim.engine import SimulationEngine
    from repro.util.rng import RandomStream

__all__ = ["TransportSpec", "TRANSPORTS", "TRANSPORT_KINDS", "transport_spec"]


@dataclass(frozen=True)
class TransportSpec:
    """Everything the rest of the system needs to know about one transport.

    Attributes:
        kind: The user-facing name (the ``--transport`` value).
        summary: One-line description (CLI help, reports).
        factory: Builds a configured instance; receives the shared
            construction context as keyword arguments (``latency`` — a ready
            :class:`~repro.net.latency.LatencyModel` or ``None``, ``engine`` —
            a :class:`~repro.sim.engine.SimulationEngine` or ``None``,
            ``ready_rng`` — a seeded stream or ``None``) and ignores what it
            does not use.
        needs_engine: The simulator must create (and expose) a
            :class:`~repro.sim.engine.SimulationEngine` for this transport;
            scenario churn is scheduled as engine events instead of being
            drained at period boundaries.
        models_time: Deliveries are priced by a latency model and the
            transport keeps a clock (``link_latency`` & friends apply).
        exact_equivalence: Zero-latency runs reproduce inline
            ``PeriodSample`` streams bit for bit (golden harness enforces).
        churn_equivalence: ``exact_equivalence`` extends to scenarios with
            membership churn.
        shard_aware: The transport honours per-shard endpoint namespacing
            (``bind(..., shard=...)`` / ``endpoints(shard=...)``) and may
            carry a sharded deployment.  All in-process transports inherit
            the base :class:`~repro.net.transport.Transport` namespace and
            are shard-aware; the socket transport goes further and routes
            each shard namespace to its own worker process.
            :class:`~repro.sim.simulator.SimulationParams` refuses
            ``shards > 1`` on a transport that is not shard-aware.
        report_diff: The protocol layer may skip re-posting load reports whose
            content the destination already holds (the report-diff exchange in
            :meth:`~repro.core.protocol.ClashSystem.exchange_load_reports`).
            Only sound on clock-less transports: a transport that prices each
            delivery with a latency model (``models_time``) or draws
            per-delivery RNG would see every later sample shift when an
            envelope is elided, breaking the equivalence contracts above.
            Message *accounting* is unaffected either way — skipped reports
            are still charged exactly as a delivery would have been.
    """

    kind: str
    summary: str
    factory: Callable[..., "Transport"]
    needs_engine: bool = False
    models_time: bool = False
    exact_equivalence: bool = True
    churn_equivalence: bool = True
    shard_aware: bool = True
    report_diff: bool = False


def _build_event(
    engine: "SimulationEngine | None" = None,
    latency: "LatencyModel | None" = None,
    **_ignored,
) -> "Transport":
    # Imported lazily: repro.net.event pulls in the simulation engine, whose
    # package imports the protocol layer, which imports repro.net.
    from repro.net.event import EventTransport

    return EventTransport(engine=engine, latency=latency)


def _build_async(
    latency: "LatencyModel | None" = None,
    ready_rng: "RandomStream | None" = None,
    **_ignored,
) -> "Transport":
    from repro.net.asyncio_transport import AsyncTransport

    return AsyncTransport(latency=latency, ready_rng=ready_rng)


def _build_replay(
    latency: "LatencyModel | None" = None,
    schedule=None,
    **_ignored,
) -> "Transport":
    from repro.net.replay import ReplayTransport

    return ReplayTransport(schedule=schedule, latency=latency)


def _build_socket(**_ignored) -> "Transport":
    # Imported lazily: the transport pulls in multiprocessing and the wire
    # codec, which only socket runs pay for.
    from repro.net.socket_transport import SocketTransport

    return SocketTransport()


TRANSPORTS: dict[str, TransportSpec] = {
    spec.kind: spec
    for spec in (
        TransportSpec(
            kind="inline",
            summary="synchronous in-process dispatch (the paper-faithful default)",
            factory=lambda **_ignored: InlineTransport(),
            report_diff=True,
        ),
        TransportSpec(
            kind="event",
            summary="discrete-event kernel delivery with simulated latency "
            "and mid-phase churn",
            factory=_build_event,
            needs_engine=True,
            models_time=True,
            # Mid-phase churn runs on the engine clock (after the period's
            # balance pass), a deliberately different schedule from the
            # period-boundary drain the clock-less transports share.
            churn_equivalence=False,
        ),
        TransportSpec(
            kind="batching",
            summary="per-period coalescing of same-destination traffic and "
            "DHT route resolutions",
            factory=lambda **_ignored: BatchingTransport(),
            report_diff=True,
        ),
        TransportSpec(
            kind="async",
            summary="asyncio event loop with awaitable handlers, per-endpoint "
            "inboxes and seeded ready-order",
            factory=_build_async,
            models_time=True,
        ),
        TransportSpec(
            kind="replay",
            summary="async delivery forced onto a recorded schedule tape "
            "(fuzz repro artifacts; FIFO with an empty tape)",
            factory=_build_replay,
            models_time=True,
        ),
        TransportSpec(
            kind="socket",
            summary="one worker process per shard, length-prefixed msgpack "
            "frames over inherited socketpairs",
            factory=_build_socket,
            # Clock-less like batching: churn drains at period boundaries,
            # routes coalesce per window with replayed hop charges, so both
            # equivalence contracts hold bit for bit.
            report_diff=True,
        ),
    )
}

TRANSPORT_KINDS = tuple(TRANSPORTS)
"""The transport names accepted by the CLI / experiment runner."""


def transport_spec(kind: str) -> TransportSpec:
    """The registered spec for ``kind`` (raises ``ValueError`` if unknown)."""
    spec = TRANSPORTS.get(kind)
    if spec is None:
        raise ValueError(
            f"unknown transport kind {kind!r}; expected one of "
            f"{', '.join(TRANSPORT_KINDS)}"
        )
    return spec
