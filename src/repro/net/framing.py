"""Length-prefixed msgpack framing for the socket transport's wire plane.

Three layers, bottom up:

* **packb / unpackb** — a self-contained implementation of the msgpack
  serialization format (the subset the protocol needs: nil, bool, int up to
  64 bits, float64, str, bin, array, map).  The encoder always emits the
  smallest representation, matching what the reference C packer produces, so
  the wire format *is* msgpack — when the real :mod:`msgpack` package is
  installed the test suite cross-validates both directions against it, but
  nothing at runtime requires the dependency.
* **encode_value / decode_value** — a registry-driven object codec that maps
  every protocol record (each :mod:`repro.core.messages` dataclass,
  :class:`~repro.net.envelope.Envelope` / ``DhtAddress``,
  :class:`~repro.keys.identifier.IdentifierKey`,
  :class:`~repro.keys.keygroup.KeyGroup`, stored
  :class:`~repro.app.query_store.Query` records and the two protocol enums)
  to a ``[tag, body]`` msgpack array and back.  Key and prefix integers are
  carried as big-endian byte strings sized from their bit width, so the codec
  is exact for any configured ``key_bits`` — including widths beyond
  msgpack's 64-bit integer ceiling.
* **encode_frame / read_frame** — the frame layer: a 4-byte big-endian
  length prefix followed by the msgpack payload, rejected above
  :data:`MAX_FRAME_BYTES`.  ``read_frame`` reads exactly one frame from a
  blocking socket and raises :class:`FrameError` on truncation (EOF mid
  frame), oversized declarations, or trailing garbage inside the payload.

The MoaT/distkv server is the idiom source: every message is one
length-delimited msgpack value, and correctness is enforced at the frame
boundary rather than deep inside handlers.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Callable

from repro.app.query_store import Query
from repro.core.messages import (
    AcceptKeyGroup,
    AcceptObject,
    AcceptObjectReply,
    LoadReport,
    MessageCategory,
    ReleaseKeyGroup,
    ReplyStatus,
)
from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup
from repro.net.envelope import DhtAddress, Envelope

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "packb",
    "unpackb",
    "encode_value",
    "decode_value",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
]

MAX_FRAME_BYTES = 16 * 1024 * 1024
"""Upper bound on one frame's msgpack payload.  A batch of load reports at
paper scale is a few hundred kilobytes; anything in the megabytes signals a
corrupted length prefix, and a peer must be able to reject it before
allocating the buffer."""

_LENGTH_PREFIX = struct.Struct(">I")
_FLOAT64 = struct.Struct(">d")


class FrameError(RuntimeError):
    """A wire frame could not be encoded or decoded (truncated stream,
    oversized length prefix, trailing garbage, unknown type tag, or a value
    outside the supported msgpack subset)."""


# --------------------------------------------------------------------- #
# msgpack subset: packb / unpackb
# --------------------------------------------------------------------- #


def _pack_into(value: object, out: bytearray) -> None:
    if value is None:
        out.append(0xC0)
    elif value is True:
        out.append(0xC3)
    elif value is False:
        out.append(0xC2)
    elif isinstance(value, int):
        _pack_int(value, out)
    elif isinstance(value, float):
        out.append(0xCB)
        out += _FLOAT64.pack(value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        size = len(data)
        if size < 32:
            out.append(0xA0 | size)
        elif size < 0x100:
            out += bytes((0xD9, size))
        elif size < 0x10000:
            out.append(0xDA)
            out += size.to_bytes(2, "big")
        else:
            out.append(0xDB)
            out += size.to_bytes(4, "big")
        out += data
    elif isinstance(value, (bytes, bytearray)):
        size = len(value)
        if size < 0x100:
            out += bytes((0xC4, size))
        elif size < 0x10000:
            out.append(0xC5)
            out += size.to_bytes(2, "big")
        else:
            out.append(0xC6)
            out += size.to_bytes(4, "big")
        out += value
    elif isinstance(value, (list, tuple)):
        size = len(value)
        if size < 16:
            out.append(0x90 | size)
        elif size < 0x10000:
            out.append(0xDC)
            out += size.to_bytes(2, "big")
        else:
            out.append(0xDD)
            out += size.to_bytes(4, "big")
        for item in value:
            _pack_into(item, out)
    elif isinstance(value, dict):
        size = len(value)
        if size < 16:
            out.append(0x80 | size)
        elif size < 0x10000:
            out.append(0xDE)
            out += size.to_bytes(2, "big")
        else:
            out.append(0xDF)
            out += size.to_bytes(4, "big")
        for key, item in value.items():
            _pack_into(key, out)
            _pack_into(item, out)
    else:
        raise FrameError(
            f"cannot pack {type(value).__name__!r}: not in the msgpack subset "
            "(encode protocol records with encode_value first)"
        )


def _pack_int(value: int, out: bytearray) -> None:
    if 0 <= value < 0x80:
        out.append(value)
    elif -32 <= value < 0:
        out.append(value & 0xFF)
    elif 0 <= value < 0x100:
        out += bytes((0xCC, value))
    elif 0 <= value < 0x10000:
        out.append(0xCD)
        out += value.to_bytes(2, "big")
    elif 0 <= value < 0x100000000:
        out.append(0xCE)
        out += value.to_bytes(4, "big")
    elif 0 <= value < 0x10000000000000000:
        out.append(0xCF)
        out += value.to_bytes(8, "big")
    elif -0x80 <= value < 0:
        out.append(0xD0)
        out += value.to_bytes(1, "big", signed=True)
    elif -0x8000 <= value < 0:
        out.append(0xD1)
        out += value.to_bytes(2, "big", signed=True)
    elif -0x80000000 <= value < 0:
        out.append(0xD2)
        out += value.to_bytes(4, "big", signed=True)
    elif -0x8000000000000000 <= value < 0:
        out.append(0xD3)
        out += value.to_bytes(8, "big", signed=True)
    else:
        raise FrameError(
            f"integer {value} does not fit in 64 bits; wide key material must "
            "travel as big-endian bytes (see encode_value)"
        )


def packb(value: object) -> bytes:
    """Serialize ``value`` (msgpack subset) to its canonical msgpack bytes."""
    out = bytearray()
    _pack_into(value, out)
    return bytes(out)


class _Unpacker:
    """Single-buffer msgpack reader with strict bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise FrameError(
                f"truncated msgpack payload: needed {count} more bytes at "
                f"offset {self._pos}, have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def done(self) -> bool:
        return self._pos == len(self._data)

    def unpack(self) -> object:
        marker = self._take(1)[0]
        if marker < 0x80:  # positive fixint
            return marker
        if marker >= 0xE0:  # negative fixint
            return marker - 0x100
        if 0x80 <= marker < 0x90:  # fixmap
            return self._unpack_map(marker & 0x0F)
        if 0x90 <= marker < 0xA0:  # fixarray
            return self._unpack_array(marker & 0x0F)
        if 0xA0 <= marker < 0xC0:  # fixstr
            return self._unpack_str(marker & 0x1F)
        if marker == 0xC0:
            return None
        if marker == 0xC2:
            return False
        if marker == 0xC3:
            return True
        if marker == 0xC4:
            return bytes(self._take(self._take(1)[0]))
        if marker == 0xC5:
            return bytes(self._take(int.from_bytes(self._take(2), "big")))
        if marker == 0xC6:
            return bytes(self._take(int.from_bytes(self._take(4), "big")))
        if marker == 0xCB:
            return _FLOAT64.unpack(self._take(8))[0]
        if marker == 0xCC:
            return self._take(1)[0]
        if marker == 0xCD:
            return int.from_bytes(self._take(2), "big")
        if marker == 0xCE:
            return int.from_bytes(self._take(4), "big")
        if marker == 0xCF:
            return int.from_bytes(self._take(8), "big")
        if marker == 0xD0:
            return int.from_bytes(self._take(1), "big", signed=True)
        if marker == 0xD1:
            return int.from_bytes(self._take(2), "big", signed=True)
        if marker == 0xD2:
            return int.from_bytes(self._take(4), "big", signed=True)
        if marker == 0xD3:
            return int.from_bytes(self._take(8), "big", signed=True)
        if marker == 0xD9:
            return self._unpack_str(self._take(1)[0])
        if marker == 0xDA:
            return self._unpack_str(int.from_bytes(self._take(2), "big"))
        if marker == 0xDB:
            return self._unpack_str(int.from_bytes(self._take(4), "big"))
        if marker == 0xDC:
            return self._unpack_array(int.from_bytes(self._take(2), "big"))
        if marker == 0xDD:
            return self._unpack_array(int.from_bytes(self._take(4), "big"))
        if marker == 0xDE:
            return self._unpack_map(int.from_bytes(self._take(2), "big"))
        if marker == 0xDF:
            return self._unpack_map(int.from_bytes(self._take(4), "big"))
        raise FrameError(f"unsupported msgpack marker 0x{marker:02x}")

    def _unpack_str(self, size: int) -> str:
        try:
            return self._take(size).decode("utf-8")
        except UnicodeDecodeError as error:
            raise FrameError(f"invalid utf-8 in msgpack string: {error}") from None

    def _unpack_array(self, size: int) -> list:
        return [self.unpack() for _ in range(size)]

    def _unpack_map(self, size: int) -> dict:
        return {self.unpack(): self.unpack() for _ in range(size)}


def unpackb(data: bytes) -> object:
    """Deserialize exactly one msgpack value; trailing bytes are an error."""
    unpacker = _Unpacker(data)
    value = unpacker.unpack()
    if not unpacker.done():
        raise FrameError(
            f"trailing garbage after msgpack value: {len(data) - unpacker._pos} "
            "unread bytes"
        )
    return value


# --------------------------------------------------------------------- #
# Typed object codec (registry driven)
# --------------------------------------------------------------------- #

# Structural tags.  Every encoded value is a [tag, body] pair so containers
# of protocol records stay unambiguous; the tag numbers are wire format and
# must never be reused for a different meaning.
_TAG_SCALAR = 0
_TAG_LIST = 1
_TAG_TUPLE = 2
_TAG_DICT = 3

_SCALARS = (type(None), bool, int, float, str, bytes)

_ENCODERS: dict[type, Callable[[object], list]] = {}
_DECODERS: dict[int, Callable[[list], object]] = {}
_TAGS: dict[type, int] = {}


def _register(tag: int, cls: type, encode_body, decode_body) -> None:
    if tag in _DECODERS:  # pragma: no cover - registration-time sanity
        raise ValueError(f"duplicate codec tag {tag}")
    _TAGS[cls] = tag
    _ENCODERS[cls] = encode_body
    _DECODERS[tag] = decode_body


def _register_dataclass(tag: int, cls: type) -> None:
    """Field-order codec for a message dataclass.

    Encoding walks :func:`dataclasses.fields` so a new field extends the wire
    format automatically; decoding calls the constructor, which re-runs the
    dataclass's own ``__post_init__`` validation — a malformed frame fails at
    the boundary instead of deep inside a handler.
    """
    names = [field.name for field in dataclasses.fields(cls)]

    def encode_body(value, names=names):
        return [encode_value(getattr(value, name)) for name in names]

    def decode_body(body, cls=cls, names=names):
        if len(body) != len(names):
            raise FrameError(
                f"{cls.__name__} frame carries {len(body)} fields, "
                f"expected {len(names)}"
            )
        try:
            return cls(**{name: decode_value(item) for name, item in zip(names, body)})
        except (TypeError, ValueError) as error:
            raise FrameError(f"invalid {cls.__name__} frame: {error}") from None

    _register(tag, cls, encode_body, decode_body)


def _register_enum(tag: int, cls: type) -> None:
    def decode_body(body, cls=cls):
        try:
            return cls(body[0])
        except ValueError as error:
            raise FrameError(f"invalid {cls.__name__} frame: {error}") from None

    _register(tag, cls, lambda value: [value.value], decode_body)


def _encode_wide_int(value: int, width: int) -> bytes:
    return value.to_bytes((width + 7) // 8, "big")


def _decode_key_body(body: list) -> IdentifierKey:
    value, width = body
    try:
        return IdentifierKey(value=int.from_bytes(value, "big"), width=width)
    except (TypeError, ValueError) as error:
        raise FrameError(f"invalid IdentifierKey frame: {error}") from None


def _decode_group_body(body: list) -> KeyGroup:
    prefix, depth, width = body
    try:
        return KeyGroup(prefix=int.from_bytes(prefix, "big"), depth=depth, width=width)
    except (TypeError, ValueError) as error:
        raise FrameError(f"invalid KeyGroup frame: {error}") from None


# Identifier keys and key-group prefixes travel as big-endian bytes sized
# from their bit width: exact for any configured key_bits, immune to
# msgpack's 64-bit integer ceiling.
_register(
    16,
    IdentifierKey,
    lambda key: [_encode_wide_int(key.value, key.width), key.width],
    _decode_key_body,
)
_register(
    17,
    KeyGroup,
    lambda group: [_encode_wide_int(group.prefix, group.depth), group.depth, group.width],
    _decode_group_body,
)
_register_enum(18, MessageCategory)
_register_enum(19, ReplyStatus)
_register_dataclass(20, AcceptObject)
_register_dataclass(21, AcceptObjectReply)
_register_dataclass(22, AcceptKeyGroup)
_register_dataclass(23, ReleaseKeyGroup)
_register_dataclass(24, LoadReport)
_register_dataclass(25, DhtAddress)
_register_dataclass(26, Envelope)
_register_dataclass(27, Query)


def encode_value(value: object) -> list:
    """Encode a protocol value to its ``[tag, body]`` wire form."""
    encoder = _ENCODERS.get(type(value))
    if encoder is not None:
        return [_TAGS[type(value)], encoder(value)]
    if isinstance(value, _SCALARS):
        return [_TAG_SCALAR, value]
    if isinstance(value, list):
        return [_TAG_LIST, [encode_value(item) for item in value]]
    if isinstance(value, tuple):
        return [_TAG_TUPLE, [encode_value(item) for item in value]]
    if isinstance(value, dict):
        return [
            _TAG_DICT,
            [[encode_value(key), encode_value(item)] for key, item in value.items()],
        ]
    raise FrameError(
        f"no codec registered for {type(value).__name__!r}; register it in "
        "repro.net.framing before putting it on the wire"
    )


def decode_value(encoded: object) -> object:
    """Invert :func:`encode_value`."""
    if not isinstance(encoded, list) or len(encoded) != 2:
        raise FrameError(f"malformed encoded value: {encoded!r}")
    tag, body = encoded
    if tag == _TAG_SCALAR:
        if body is not None and not isinstance(body, _SCALARS):
            raise FrameError(f"malformed scalar body: {body!r}")
        return body
    if tag == _TAG_LIST:
        return [decode_value(item) for item in body]
    if tag == _TAG_TUPLE:
        return tuple(decode_value(item) for item in body)
    if tag == _TAG_DICT:
        return {decode_value(key): decode_value(item) for key, item in body}
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise FrameError(f"unknown codec tag {tag!r}")
    if not isinstance(body, list):
        raise FrameError(f"codec tag {tag} carries non-array body: {body!r}")
    return decoder(body)


# --------------------------------------------------------------------- #
# Frame layer
# --------------------------------------------------------------------- #


def encode_frame(payload: object) -> bytes:
    """One wire frame: 4-byte big-endian length + msgpack payload."""
    data = packb(payload)
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload is {len(data)} bytes, above the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _LENGTH_PREFIX.pack(len(data)) + data


def decode_frame(data: bytes) -> object:
    """Decode the payload of one complete frame (prefix already stripped)."""
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload is {len(data)} bytes, above the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return unpackb(data)


def _read_exact(sock, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a frame edge."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks or remaining != count:
                raise FrameError(
                    f"connection closed mid-frame: {count - remaining} of "
                    f"{count} bytes received"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock) -> object | None:
    """Read one frame from a blocking socket.

    Returns the decoded msgpack payload, or ``None`` when the peer closed the
    connection cleanly *between* frames.  EOF inside a frame, an oversized
    length prefix and payload garbage all raise :class:`FrameError`.
    """
    prefix = _read_exact(sock, _LENGTH_PREFIX.size)
    if prefix is None:
        return None
    (size,) = _LENGTH_PREFIX.unpack(prefix)
    if size > MAX_FRAME_BYTES:
        raise FrameError(
            f"peer declared a {size}-byte frame, above the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    payload = _read_exact(sock, size)
    if payload is None:
        raise FrameError(f"connection closed before the {size}-byte frame body")
    return unpackb(payload)


def write_frame(sock, payload: object) -> None:
    """Encode and send one frame on a blocking socket."""
    sock.sendall(encode_frame(payload))
