"""Pluggable transports carrying all CLASH inter-node traffic.

The protocol layer wraps every exchange in an
:class:`~repro.net.envelope.Envelope` and hands it to a
:class:`~repro.net.transport.Transport`; which transport is installed decides
whether delivery is synchronous (:class:`~repro.net.inline.InlineTransport`),
event-driven with simulated latency (:class:`~repro.net.event.EventTransport`)
or batched per load-check period
(:class:`~repro.net.batching.BatchingTransport`).

:func:`build_transport` maps the user-facing ``--transport`` switch to a
configured instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.batching import BatchingTransport
from repro.net.envelope import Delivery, DhtAddress, Envelope
from repro.net.inline import InlineTransport
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    PerHopLatency,
    UniformLatency,
    ZeroLatency,
)
from repro.net.transport import Transport, TransportError
from repro.util.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.event import EventTransport
    from repro.sim.engine import SimulationEngine

__all__ = [
    "Delivery",
    "DhtAddress",
    "Envelope",
    "Transport",
    "TransportError",
    "InlineTransport",
    "EventTransport",
    "BatchingTransport",
    "LatencyModel",
    "ZeroLatency",
    "ConstantLatency",
    "UniformLatency",
    "PerHopLatency",
    "TRANSPORT_KINDS",
    "build_transport",
]

TRANSPORT_KINDS = ("inline", "event", "batching")
"""The transport names accepted by the CLI / experiment runner."""


def __getattr__(name: str):
    # EventTransport pulls in the simulation engine, whose package imports the
    # protocol layer; loading it lazily keeps ``repro.net`` importable from
    # ``repro.core.protocol`` without a cycle.
    if name == "EventTransport":
        from repro.net.event import EventTransport

        return EventTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def build_transport(
    kind: str,
    engine: "SimulationEngine | None" = None,
    link_latency: float = 0.0,
    latency_jitter: float = 0.0,
    per_hop_latency: float = 0.0,
    rng: RandomStream | None = None,
) -> Transport:
    """Construct a transport from the CLI-level description.

    Args:
        kind: One of :data:`TRANSPORT_KINDS`.
        engine: Event kernel for the ``event`` transport (a private one is
            created when omitted).
        link_latency: Base one-way delivery latency in seconds (``event``).
        latency_jitter: Half-width of uniform jitter around ``link_latency``;
            requires ``rng`` for reproducibility (``event``).
        per_hop_latency: Extra latency charged per Chord routing hop
            (``event``); combined with ``link_latency`` as the base.
        rng: Seeded stream used when ``latency_jitter`` is non-zero.
    """
    if kind == "inline":
        return InlineTransport()
    if kind == "batching":
        return BatchingTransport()
    if kind == "event":
        from repro.net.event import EventTransport

        latency: LatencyModel
        if per_hop_latency > 0.0 and latency_jitter > 0.0:
            raise ValueError(
                "per_hop_latency and latency_jitter cannot be combined; "
                "pick one latency model"
            )
        if per_hop_latency > 0.0:
            latency = PerHopLatency(base=link_latency, per_hop=per_hop_latency)
        elif latency_jitter > 0.0:
            if rng is None:
                raise ValueError("latency_jitter requires a seeded rng")
            low = max(0.0, link_latency - latency_jitter)
            latency = UniformLatency(low, link_latency + latency_jitter, rng)
        elif link_latency > 0.0:
            latency = ConstantLatency(link_latency)
        else:
            latency = ZeroLatency()
        return EventTransport(engine=engine, latency=latency)
    raise ValueError(
        f"unknown transport kind {kind!r}; expected one of {', '.join(TRANSPORT_KINDS)}"
    )
