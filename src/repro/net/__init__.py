"""Pluggable transports carrying all CLASH inter-node traffic.

The protocol layer wraps every exchange in an
:class:`~repro.net.envelope.Envelope` and hands it to a
:class:`~repro.net.transport.Transport`; which transport is installed decides
whether delivery is synchronous (:class:`~repro.net.inline.InlineTransport`),
event-driven with simulated latency (:class:`~repro.net.event.EventTransport`),
batched per load-check period
(:class:`~repro.net.batching.BatchingTransport`), awaitable on an asyncio
event loop (:class:`~repro.net.asyncio_transport.AsyncTransport`) or carried
to per-shard worker processes over framed sockets
(:class:`~repro.net.socket_transport.SocketTransport`).

All transports are declared once in the :data:`TRANSPORTS` registry
(:mod:`repro.net.registry`); the CLI choices, simulator validation and test
parametrization derive from it, and :func:`build_transport` maps the
user-facing ``--transport`` switch to a configured instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.batching import BatchingTransport
from repro.net.envelope import Delivery, DhtAddress, Envelope
from repro.net.inline import InlineTransport
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    PerHopLatency,
    UniformLatency,
    ZeroLatency,
)
from repro.net.registry import TRANSPORT_KINDS, TRANSPORTS, TransportSpec, transport_spec
from repro.net.transport import DELIVERY_LOG_LIMIT, DeliveryFailed, Transport, TransportError
from repro.util.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.asyncio_transport import AsyncTransport
    from repro.net.event import EventTransport
    from repro.net.replay import ReplaySchedule, ReplayTransport
    from repro.net.socket_transport import SocketTransport
    from repro.sim.engine import SimulationEngine

__all__ = [
    "Delivery",
    "DhtAddress",
    "Envelope",
    "Transport",
    "TransportError",
    "DeliveryFailed",
    "InlineTransport",
    "EventTransport",
    "BatchingTransport",
    "AsyncTransport",
    "SocketTransport",
    "ReplayTransport",
    "ReplaySchedule",
    "ChurnEvent",
    "TieRecorder",
    "TieTape",
    "DELIVERY_LOG_LIMIT",
    "LatencyModel",
    "ZeroLatency",
    "ConstantLatency",
    "UniformLatency",
    "PerHopLatency",
    "TransportSpec",
    "TRANSPORTS",
    "TRANSPORT_KINDS",
    "transport_spec",
    "build_transport",
]


def __getattr__(name: str):
    # EventTransport pulls in the simulation engine, whose package imports the
    # protocol layer; loading it lazily keeps ``repro.net`` importable from
    # ``repro.core.protocol`` without a cycle.  AsyncTransport is kept lazy
    # for symmetry (and so importing repro.net never touches asyncio).
    if name == "EventTransport":
        from repro.net.event import EventTransport

        return EventTransport
    if name == "AsyncTransport":
        from repro.net.asyncio_transport import AsyncTransport

        return AsyncTransport
    if name == "SocketTransport":
        from repro.net.socket_transport import SocketTransport

        return SocketTransport
    if name in ("ReplayTransport", "ReplaySchedule", "ChurnEvent", "TieRecorder", "TieTape"):
        from repro.net import replay

        return getattr(replay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _latency_model(
    link_latency: float,
    latency_jitter: float,
    per_hop_latency: float,
    rng: RandomStream | None,
) -> LatencyModel:
    """Map the CLI-level latency knobs to a model (time-modelling transports)."""
    if per_hop_latency > 0.0 and latency_jitter > 0.0:
        raise ValueError(
            "per_hop_latency and latency_jitter cannot be combined; "
            "pick one latency model"
        )
    if per_hop_latency > 0.0:
        return PerHopLatency(base=link_latency, per_hop=per_hop_latency)
    if latency_jitter > 0.0:
        if rng is None:
            raise ValueError("latency_jitter requires a seeded rng")
        low = max(0.0, link_latency - latency_jitter)
        return UniformLatency(low, link_latency + latency_jitter, rng)
    if link_latency > 0.0:
        return ConstantLatency(link_latency)
    return ZeroLatency()


def build_transport(
    kind: str,
    engine: "SimulationEngine | None" = None,
    link_latency: float = 0.0,
    latency_jitter: float = 0.0,
    per_hop_latency: float = 0.0,
    rng: RandomStream | None = None,
    ready_rng: RandomStream | None = None,
    schedule: "ReplaySchedule | None" = None,
) -> Transport:
    """Construct a transport from the CLI-level description.

    Args:
        kind: One of :data:`TRANSPORT_KINDS` (see :data:`TRANSPORTS`).
        engine: Event kernel for the ``event`` transport (a private one is
            created when omitted).
        link_latency: Base one-way delivery latency in seconds (transports
            that model time).
        latency_jitter: Half-width of uniform jitter around ``link_latency``;
            requires ``rng`` for reproducibility.
        per_hop_latency: Extra latency charged per Chord routing hop;
            combined with ``link_latency`` as the base.
        rng: Seeded stream used when ``latency_jitter`` is non-zero.
        ready_rng: Seeded stream for the ``async`` transport's ready-order
            tie-breaking (``None`` falls back to send-order).
        schedule: Recorded schedule forced by the ``replay`` transport
            (ignored by every other kind; ``None`` replays an empty tape,
            i.e. deterministic FIFO).
    """
    spec = transport_spec(kind)
    latency: LatencyModel | None = None
    if spec.models_time:
        latency = _latency_model(link_latency, latency_jitter, per_hop_latency, rng)
    transport = spec.factory(
        engine=engine, latency=latency, ready_rng=ready_rng, schedule=schedule
    )
    transport.supports_report_diff = spec.report_diff
    return transport
