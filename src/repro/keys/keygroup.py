"""Key groups: the (virtual key, depth) pairs at the heart of CLASH.

A key group of depth ``d`` over an ``N``-bit identifier space is the set of all
identifier keys sharing a given ``d``-bit prefix (Section 4 of the paper).  The
group is identified by its *virtual key* — the prefix padded with ``N - d``
trailing zeros — together with the depth.  The paper writes groups in a
wildcard notation: ``"0110*"`` is the depth-4 group of 7-bit keys beginning
``0110``; its virtual key is ``0110000``.

:class:`KeyGroup` provides the algebra the binary splitting algorithm relies
on:

* ``split()`` — the two depth ``d+1`` children; the *left* child has the same
  virtual key as the parent (and therefore hashes to the same server), the
  *right* child differs in bit ``d`` and (with high probability) hashes
  elsewhere.
* ``parent()`` / ``sibling()`` — used by bottom-up consolidation.
* ``contains()`` / prefix relationships — used by the ServerTable's longest
  prefix match and the client's depth search.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, Optional, Tuple

from repro.keys.identifier import IdentifierKey
from repro.util.bitops import int_to_bits, pad_prefix_to_width
from repro.util.validation import check_positive, check_type

__all__ = ["KeyGroup", "first_overlapping_pair"]

#: Memo of ``KeyGroup.split()`` results keyed by the parent's identity.
#: ``split()`` is called for the same few thousand distinct parents hundreds
#: of times each during a balance-heavy run (the splitting algebra revisits
#: the same tree edges over and over), and every uncached call re-validates
#: two frozen children through ``__post_init__``.  KeyGroup is immutable and
#: value-equal, so the cached child pair can be shared freely.  The cache is
#: bounded; overflowing it (distinct parents, not call volume) clears it —
#: correctness never depends on a hit.
_SPLIT_CACHE: dict[tuple[int, int, int], tuple["KeyGroup", "KeyGroup"]] = {}
_SPLIT_CACHE_LIMIT = 1 << 16


def first_overlapping_pair(
    groups: Iterable["KeyGroup"],
) -> Optional[Tuple["KeyGroup", "KeyGroup"]]:
    """The first overlapping pair among ``groups`` in sorted order, or ``None``.

    A linear adjacent-pair scan suffices: groups sort by
    ``(padded prefix value, depth)``, and if any two groups A < B overlap
    (one is a prefix of the other) then every group X between them satisfies
    ``A.padded <= X.padded <= B.padded <= A.padded + A.size - 1`` — the key
    ``X.padded`` lies inside A, so X overlaps A too.  In particular A
    overlaps its *immediate successor*, so a set with any overlap always has
    an overlapping adjacent pair.  This makes prefix-freeness checking O(n)
    after the sort (O(n²) pairwise before), cheap enough for the fuzzer to
    run at every quiescent point.
    """
    ordered = sorted(groups)
    for left, right in zip(ordered, ordered[1:]):
        if left.overlaps(right):
            return left, right
    return None


@total_ordering
@dataclass(frozen=True)
class KeyGroup:
    """The set of ``width``-bit identifier keys sharing a ``depth``-bit prefix.

    Attributes:
        prefix: Integer value of the ``depth``-bit prefix (MSB first).
        depth: Number of significant prefix bits (``d`` in the paper).
        width: Total identifier key width (``N`` in the paper).
    """

    prefix: int
    depth: int
    width: int

    def __post_init__(self) -> None:
        check_type("prefix", self.prefix, int)
        check_type("depth", self.depth, int)
        check_type("width", self.width, int)
        check_positive("width", self.width)
        if not 0 <= self.depth <= self.width:
            raise ValueError(
                f"depth must be in [0, {self.width}], got {self.depth}"
            )
        if not 0 <= self.prefix < (1 << self.depth):
            raise ValueError(
                f"prefix {self.prefix} does not fit in {self.depth} bits"
            )
        # Groups key nearly every hot dict in the system (server tables,
        # child-report maps, route memos), so the field-tuple hash the
        # dataclass machinery would rebuild per call is precomputed once.
        # The value matches the generated ``__hash__`` exactly.
        object.__setattr__(self, "_hash", hash((self.prefix, self.depth, self.width)))

    def __hash__(self) -> int:  # overrides the dataclass-generated tuple hash
        return self._hash

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def root(cls, width: int) -> "KeyGroup":
        """The depth-0 group containing every ``width``-bit key."""
        return cls(prefix=0, depth=0, width=width)

    @classmethod
    def from_wildcard(cls, pattern: str, width: int) -> "KeyGroup":
        """Parse the paper's wildcard notation, e.g. ``'0110*'`` with width 7.

        A pattern without a trailing ``*`` denotes a full-depth (leaf) group.
        """
        check_type("pattern", pattern, str)
        body = pattern[:-1] if pattern.endswith("*") else pattern
        if any(ch not in "01" for ch in body):
            raise ValueError(f"wildcard pattern must be binary digits + '*', got {pattern!r}")
        if len(body) > width:
            raise ValueError(
                f"pattern {pattern!r} has {len(body)} bits but width is {width}"
            )
        prefix = int(body, 2) if body else 0
        return cls(prefix=prefix, depth=len(body), width=width)

    @classmethod
    def from_key(cls, key: IdentifierKey, depth: int) -> "KeyGroup":
        """The depth-``depth`` group containing ``key`` (the paper's ``Shape()``)."""
        return cls(prefix=key.prefix(depth), depth=depth, width=key.width)

    # ------------------------------------------------------------------ #
    # Identity / representation
    # ------------------------------------------------------------------ #

    @property
    def virtual_key(self) -> IdentifierKey:
        """The virtual key: the prefix padded with trailing zeros to full width."""
        value = pad_prefix_to_width(self.prefix, self.depth, self.width)
        return IdentifierKey(value=value, width=self.width)

    def wildcard(self) -> str:
        """Render the group in the paper's wildcard notation (e.g. ``'0110*'``)."""
        bits = int_to_bits(self.prefix, self.depth) if self.depth else ""
        if self.depth == self.width:
            return bits
        return bits + "*"

    @property
    def size(self) -> int:
        """Number of distinct identifier keys in the group (``2**(width - depth)``)."""
        return 1 << (self.width - self.depth)

    def __str__(self) -> str:
        return f"{self.wildcard()} (depth={self.depth})"

    def __lt__(self, other: "KeyGroup") -> bool:
        if not isinstance(other, KeyGroup):
            return NotImplemented
        # Compare on (virtual key value, depth) without materialising the
        # IdentifierKey objects — ordering is hot in the maintained sorted
        # views of server tables.
        return (self.prefix << (self.width - self.depth), self.depth) < (
            other.prefix << (other.width - other.depth),
            other.depth,
        )

    # ------------------------------------------------------------------ #
    # Membership and prefix relationships
    # ------------------------------------------------------------------ #

    def contains_key(self, key: IdentifierKey) -> bool:
        """True if ``key`` belongs to this group (its first ``depth`` bits match)."""
        if key.width != self.width:
            raise ValueError(
                f"key width {key.width} does not match group width {self.width}"
            )
        return key.prefix(self.depth) == self.prefix

    def contains_group(self, other: "KeyGroup") -> bool:
        """True if ``other`` is a (non-strict) sub-group of this group."""
        self._check_same_width(other)
        if other.depth < self.depth:
            return False
        return (other.prefix >> (other.depth - self.depth)) == self.prefix

    def is_ancestor_of(self, other: "KeyGroup") -> bool:
        """True if this group strictly contains ``other``."""
        return self.depth < other.depth and self.contains_group(other)

    def overlaps(self, other: "KeyGroup") -> bool:
        """True if the two groups share at least one identifier key."""
        self._check_same_width(other)
        return self.contains_group(other) or other.contains_group(self)

    def _check_same_width(self, other: "KeyGroup") -> None:
        if other.width != self.width:
            raise ValueError(
                f"cannot relate groups of different widths ({self.width} vs {other.width})"
            )

    # ------------------------------------------------------------------ #
    # The binary-splitting algebra
    # ------------------------------------------------------------------ #

    def split(self) -> tuple["KeyGroup", "KeyGroup"]:
        """Split into the (left, right) depth ``d+1`` children.

        The left child extends the prefix with a 0 bit and therefore has the
        *same virtual key* as this group (it maps back to the same DHT
        server); the right child extends with a 1 bit and will, with high
        probability, hash to a different server.
        """
        if self.depth >= self.width:
            raise ValueError(f"cannot split a full-depth group {self}")
        key = (self.prefix, self.depth, self.width)
        cached = _SPLIT_CACHE.get(key)
        if cached is None:
            if len(_SPLIT_CACHE) >= _SPLIT_CACHE_LIMIT:
                _SPLIT_CACHE.clear()
            left = KeyGroup(prefix=self.prefix << 1, depth=self.depth + 1, width=self.width)
            right = KeyGroup(
                prefix=(self.prefix << 1) | 1, depth=self.depth + 1, width=self.width
            )
            cached = (left, right)
            _SPLIT_CACHE[key] = cached
        return cached

    def parent(self) -> "KeyGroup":
        """The depth ``d-1`` group obtained by dropping the last prefix bit."""
        if self.depth == 0:
            raise ValueError("the root group has no parent")
        return KeyGroup(prefix=self.prefix >> 1, depth=self.depth - 1, width=self.width)

    def sibling(self) -> "KeyGroup":
        """The other child of this group's parent (flip the last prefix bit)."""
        if self.depth == 0:
            raise ValueError("the root group has no sibling")
        return KeyGroup(prefix=self.prefix ^ 1, depth=self.depth, width=self.width)

    def is_left_child(self) -> bool:
        """True if this group is the left (0-bit) child of its parent."""
        if self.depth == 0:
            raise ValueError("the root group is not a child")
        return (self.prefix & 1) == 0

    def is_right_child(self) -> bool:
        """True if this group is the right (1-bit) child of its parent."""
        if self.depth == 0:
            raise ValueError("the root group is not a child")
        return (self.prefix & 1) == 1

    def child(self, bit: int) -> "KeyGroup":
        """The child obtained by appending ``bit`` (0 = left, 1 = right)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        left, right = self.split()
        return left if bit == 0 else right

    def descend_towards(self, key: IdentifierKey, target_depth: int) -> "KeyGroup":
        """The depth ``target_depth`` descendant of this group containing ``key``.

        Raises if ``key`` is not in this group or ``target_depth < depth``.
        """
        if target_depth < self.depth or target_depth > self.width:
            raise ValueError(
                f"target_depth must be in [{self.depth}, {self.width}], got {target_depth}"
            )
        if not self.contains_key(key):
            raise ValueError(f"key {key} is not contained in group {self}")
        return KeyGroup.from_key(key, target_depth)
