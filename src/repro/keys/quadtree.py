"""Quad-tree geographic key encoding (the paper's Section 3 example).

A rectangular area is recursively split into four sub-regions; each split
contributes two bits to the identifier key (00 = south-west, 01 = south-east,
10 = north-west, 11 = north-east).  Repeating the split ``levels`` times yields
a ``2 * levels``-bit key whose prefix structure mirrors spatial containment:
keys with a common prefix lie in a common enclosing rectangle.  This is the
natural ``KeyGen()`` for the Mobiscope-style telematics and multiplayer-game
applications the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup
from repro.util.validation import check_positive, check_type

__all__ = ["GridCell", "QuadTreeEncoder"]


@dataclass(frozen=True)
class GridCell:
    """An axis-aligned rectangle in the unit square covered by a key prefix.

    Attributes:
        x_min, x_max: Horizontal extent, ``0 <= x_min < x_max <= 1``.
        y_min, y_max: Vertical extent, ``0 <= y_min < y_max <= 1``.
    """

    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.x_min < self.x_max <= 1.0):
            raise ValueError(f"invalid x extent [{self.x_min}, {self.x_max}]")
        if not (0.0 <= self.y_min < self.y_max <= 1.0):
            raise ValueError(f"invalid y extent [{self.y_min}, {self.y_max}]")

    def contains(self, x: float, y: float) -> bool:
        """True if the point lies inside the cell (inclusive of the low edges)."""
        return self.x_min <= x < self.x_max and self.y_min <= y < self.y_max

    @property
    def width(self) -> float:
        """Horizontal size of the cell."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Vertical size of the cell."""
        return self.y_max - self.y_min

    @property
    def centre(self) -> tuple[float, float]:
        """The centre point of the cell."""
        return (self.x_min + self.width / 2.0, self.y_min + self.height / 2.0)


class QuadTreeEncoder:
    """Encode unit-square positions into hierarchical identifier keys.

    Args:
        levels: Number of quad-tree levels; the resulting key width is
            ``2 * levels`` bits.  The paper's N = 24 corresponds to 12 levels.
    """

    def __init__(self, levels: int) -> None:
        check_type("levels", levels, int)
        check_positive("levels", levels)
        self._levels = levels

    @property
    def levels(self) -> int:
        """Number of quad-tree subdivision levels."""
        return self._levels

    @property
    def key_width(self) -> int:
        """Width in bits of generated keys (two bits per level)."""
        return 2 * self._levels

    def encode(self, x: float, y: float) -> IdentifierKey:
        """Encode a point in the unit square into an identifier key.

        Each level contributes two bits: the first is 1 iff the point is in the
        upper (north) half of the current cell, the second is 1 iff it is in
        the right (east) half.
        """
        if not (0.0 <= x < 1.0 and 0.0 <= y < 1.0):
            raise ValueError(f"point ({x}, {y}) must lie in the unit square [0, 1)^2")
        value = 0
        x_min, x_max, y_min, y_max = 0.0, 1.0, 0.0, 1.0
        for _ in range(self._levels):
            x_mid = (x_min + x_max) / 2.0
            y_mid = (y_min + y_max) / 2.0
            north = y >= y_mid
            east = x >= x_mid
            value = (value << 1) | int(north)
            value = (value << 1) | int(east)
            if north:
                y_min = y_mid
            else:
                y_max = y_mid
            if east:
                x_min = x_mid
            else:
                x_max = x_mid
        return IdentifierKey(value=value, width=self.key_width)

    def decode_cell(self, key: IdentifierKey, depth: int | None = None) -> GridCell:
        """Return the grid cell covered by the first ``depth`` bits of ``key``.

        ``depth`` must be even (each level consumes two bits); ``None`` means
        the full key width.
        """
        if key.width != self.key_width:
            raise ValueError(
                f"key width {key.width} does not match encoder width {self.key_width}"
            )
        if depth is None:
            depth = self.key_width
        if depth % 2 != 0:
            raise ValueError(f"depth must be even for quad-tree decoding, got {depth}")
        if not 0 <= depth <= self.key_width:
            raise ValueError(f"depth must be in [0, {self.key_width}], got {depth}")
        x_min, x_max, y_min, y_max = 0.0, 1.0, 0.0, 1.0
        bits = key.bits()
        for level in range(depth // 2):
            north = bits[2 * level] == "1"
            east = bits[2 * level + 1] == "1"
            x_mid = (x_min + x_max) / 2.0
            y_mid = (y_min + y_max) / 2.0
            if north:
                y_min = y_mid
            else:
                y_max = y_mid
            if east:
                x_min = x_mid
            else:
                x_max = x_mid
        return GridCell(x_min=x_min, x_max=x_max, y_min=y_min, y_max=y_max)

    def group_cell(self, group: KeyGroup) -> GridCell:
        """The grid cell covered by a key group (its depth must be even)."""
        return self.decode_cell(group.virtual_key, depth=group.depth)

    def cell_group(self, x: float, y: float, depth: int) -> KeyGroup:
        """The depth-``depth`` key group of the cell containing the point."""
        key = self.encode(x, y)
        return KeyGroup.from_key(key, depth)
