"""Identifier-key to hash-key functions (the paper's ``f()``).

A DHT stores an object at the server owning ``Map(f(k'))`` where ``k'`` is the
(virtual) identifier key and ``f`` maps the N-bit identifier space into the
M-bit hash space.  CLASH requires nothing of ``f`` beyond determinism and good
mixing; we use SHA-1 (the hash Chord itself uses) truncated to M bits.

The module also provides :class:`HashFamily`, a family of independent hash
functions obtained by salting, which the power-of-d-choices baseline
(Byers et al. [5]) needs.
"""

from __future__ import annotations

import hashlib

from repro.keys.identifier import IdentifierKey
from repro.util.validation import check_positive, check_type

__all__ = ["Sha1HashFunction", "HashFamily", "truncate_hash"]


def truncate_hash(digest: bytes, bits: int) -> int:
    """Interpret the first bytes of a digest as an unsigned ``bits``-bit integer."""
    check_type("bits", bits, int)
    check_positive("bits", bits)
    needed_bytes = (bits + 7) // 8
    if len(digest) < needed_bytes:
        raise ValueError(
            f"digest of {len(digest)} bytes is too short for {bits} bits"
        )
    value = int.from_bytes(digest[:needed_bytes], "big")
    excess = needed_bytes * 8 - bits
    return value >> excess


class Sha1HashFunction:
    """SHA-1 based hash from identifier keys to an M-bit hash space.

    Args:
        hash_bits: Width M of the hash space (the paper's simulations use 24).
        salt: Optional salt mixed into the hash; different salts yield
            effectively independent functions.
    """

    def __init__(self, hash_bits: int, salt: int = 0) -> None:
        check_type("hash_bits", hash_bits, int)
        check_positive("hash_bits", hash_bits)
        check_type("salt", salt, int)
        self._hash_bits = hash_bits
        self._salt = salt

    @property
    def hash_bits(self) -> int:
        """Width of the hash space in bits."""
        return self._hash_bits

    @property
    def salt(self) -> int:
        """Salt value distinguishing this function within a family."""
        return self._salt

    def hash_key(self, key: IdentifierKey) -> int:
        """Hash an identifier key into the M-bit hash space."""
        return self.hash_value(key.value, key.width)

    def hash_value(self, value: int, width: int) -> int:
        """Hash a raw ``width``-bit integer into the M-bit hash space."""
        payload = f"{self._salt}:{width}:{value}".encode("utf-8")
        digest = hashlib.sha1(payload).digest()
        return truncate_hash(digest, self._hash_bits)

    def hash_string(self, text: str) -> int:
        """Hash an arbitrary string (used for server node identifiers)."""
        payload = f"{self._salt}:str:{text}".encode("utf-8")
        digest = hashlib.sha1(payload).digest()
        return truncate_hash(digest, self._hash_bits)


class HashFamily:
    """A family of ``d`` independent hash functions over the same hash space.

    Used by the power-of-d-choices baseline, where each object key is hashed
    with ``d >= 2`` functions and stored at the least-loaded of the candidate
    servers.
    """

    def __init__(self, hash_bits: int, count: int) -> None:
        check_type("count", count, int)
        check_positive("count", count)
        self._functions = [
            Sha1HashFunction(hash_bits=hash_bits, salt=index) for index in range(count)
        ]

    def __len__(self) -> int:
        return len(self._functions)

    def __getitem__(self, index: int) -> Sha1HashFunction:
        return self._functions[index]

    def __iter__(self):
        return iter(self._functions)

    def hash_key_all(self, key: IdentifierKey) -> list[int]:
        """Hash a key with every function in the family."""
        return [function.hash_key(key) for function in self._functions]
