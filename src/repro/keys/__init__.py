"""Hierarchical identifier keys, key groups and hash functions.

CLASH operates in the *identifier key space*: every object carries an N-bit
identifier key whose bit prefix encodes hierarchical clustering relationships
(Section 3 of the paper).  This package provides:

* :class:`~repro.keys.identifier.IdentifierKey` — an immutable N-bit key.
* :class:`~repro.keys.keygroup.KeyGroup` — a (virtual key, depth) pair
  identifying the set of keys sharing a d-bit prefix, with the split /
  parent / sibling algebra used by the binary splitting algorithm.
* :class:`~repro.keys.quadtree.QuadTreeEncoder` — the paper's example key
  generator: a geographic area recursively split into four sub-regions, each
  contributing two bits to the key.
* :mod:`~repro.keys.hashing` — identifier-key → hash-key functions (the
  ``f()`` in the paper) including an independent hash family used by the
  power-of-d-choices baseline.
"""

from repro.keys.hashing import HashFamily, Sha1HashFunction, truncate_hash
from repro.keys.identifier import IdentifierKey, RandomKeyGenerator
from repro.keys.keygroup import KeyGroup
from repro.keys.quadtree import GridCell, QuadTreeEncoder

__all__ = [
    "IdentifierKey",
    "RandomKeyGenerator",
    "KeyGroup",
    "QuadTreeEncoder",
    "GridCell",
    "Sha1HashFunction",
    "HashFamily",
    "truncate_hash",
]
