"""N-bit identifier keys (the paper's ``KeyGen()`` output).

An identifier key is a fixed-width bit string produced by an application
specific ``KeyGen()`` function; CLASH never interprets the key beyond treating
its bit prefix as a hierarchy.  :class:`IdentifierKey` is an immutable value
object; :class:`RandomKeyGenerator` produces keys with a configurable split
between "base" bits (drawn from a possibly skewed distribution) and uniformly
random remainder bits — exactly the structure used in the paper's simulations
(Section 6.1: N = 24 with an X = 8 bit skewed base portion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.util.bitops import common_prefix_length, extract_prefix, int_to_bits
from repro.util.rng import RandomStream
from repro.util.validation import check_positive, check_type

__all__ = ["IdentifierKey", "RandomKeyGenerator"]


@dataclass(frozen=True, order=True)
class IdentifierKey:
    """An immutable ``width``-bit identifier key.

    Attributes:
        value: The integer value of the key, in ``[0, 2**width)``.
        width: The number of bits (``N`` in the paper).
    """

    value: int
    width: int

    def __post_init__(self) -> None:
        check_type("value", self.value, int)
        check_type("width", self.width, int)
        check_positive("width", self.width)
        if not 0 <= self.value < (1 << self.width):
            raise ValueError(
                f"key value {self.value} does not fit in {self.width} bits"
            )

    @classmethod
    def from_bits(cls, bits: str) -> "IdentifierKey":
        """Construct a key from an MSB-first binary string, e.g. ``'0110101'``."""
        if not bits:
            raise ValueError("bits must be a non-empty binary string")
        if any(ch not in "01" for ch in bits):
            raise ValueError(f"bits must contain only '0'/'1', got {bits!r}")
        return cls(value=int(bits, 2), width=len(bits))

    def bits(self) -> str:
        """The MSB-first binary representation of the key."""
        return int_to_bits(self.value, self.width)

    def prefix(self, depth: int) -> int:
        """The integer value of the first ``depth`` bits."""
        return extract_prefix(self.value, self.width, depth)

    def common_prefix_length(self, other: "IdentifierKey") -> int:
        """Length of the common prefix with another key of the same width."""
        if other.width != self.width:
            raise ValueError(
                f"cannot compare keys of different widths ({self.width} vs {other.width})"
            )
        return common_prefix_length(self.value, other.value, self.width)

    def with_base(self, base_value: int, base_bits: int) -> "IdentifierKey":
        """Return a copy with the first ``base_bits`` bits replaced by ``base_value``."""
        if not 0 <= base_bits <= self.width:
            raise ValueError(f"base_bits must be in [0, {self.width}], got {base_bits}")
        if not 0 <= base_value < (1 << base_bits):
            raise ValueError(
                f"base_value {base_value} does not fit in {base_bits} bits"
            )
        remainder_bits = self.width - base_bits
        remainder = self.value & ((1 << remainder_bits) - 1)
        return IdentifierKey(
            value=(base_value << remainder_bits) | remainder, width=self.width
        )

    def __str__(self) -> str:
        return self.bits()


class RandomKeyGenerator:
    """Generate identifier keys with a skewed base portion and uniform remainder.

    This is the paper's simulation key model: the first ``base_bits`` bits are
    drawn from a (possibly skewed) distribution over ``2**base_bits`` values,
    and the remaining ``width - base_bits`` bits are uniformly random.

    Args:
        width: Total key width N (the paper uses 24).
        base_bits: Number of skewed base bits X (the paper uses 8).
        base_weights: Unnormalised weights over the ``2**base_bits`` base
            values.  ``None`` means uniform.
        rng: Random stream to draw from.
    """

    def __init__(
        self,
        width: int,
        base_bits: int,
        rng: RandomStream,
        base_weights: Sequence[float] | None = None,
    ) -> None:
        check_type("width", width, int)
        check_type("base_bits", base_bits, int)
        check_positive("width", width)
        if not 0 <= base_bits <= width:
            raise ValueError(f"base_bits must be in [0, {width}], got {base_bits}")
        if base_weights is not None and len(base_weights) != (1 << base_bits):
            raise ValueError(
                f"base_weights must have {1 << base_bits} entries, got {len(base_weights)}"
            )
        self._width = width
        self._base_bits = base_bits
        self._base_weights = list(base_weights) if base_weights is not None else None
        self._rng = rng

    @property
    def width(self) -> int:
        """Total key width in bits."""
        return self._width

    @property
    def base_bits(self) -> int:
        """Number of bits drawn from the base distribution."""
        return self._base_bits

    def set_base_weights(self, base_weights: Sequence[float] | None) -> None:
        """Replace the base-value distribution (used when the workload phase changes)."""
        if base_weights is not None and len(base_weights) != (1 << self._base_bits):
            raise ValueError(
                f"base_weights must have {1 << self._base_bits} entries, "
                f"got {len(base_weights)}"
            )
        self._base_weights = list(base_weights) if base_weights is not None else None

    def generate(self) -> IdentifierKey:
        """Draw one identifier key."""
        if self._base_bits == 0:
            base_value = 0
        elif self._base_weights is None:
            base_value = self._rng.randbits(self._base_bits)
        else:
            base_value = self._rng.sample_pmf(self._base_weights)
        remainder_bits = self._width - self._base_bits
        remainder = self._rng.randbits(remainder_bits)
        value = (base_value << remainder_bits) | remainder
        return IdentifierKey(value=value, width=self._width)

    def generate_many(self, count: int) -> list[IdentifierKey]:
        """Draw ``count`` identifier keys."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.generate() for _ in range(count)]
