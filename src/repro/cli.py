"""Command-line interface for regenerating the paper's figures.

Examples
--------

Regenerate every figure at the default reduced scale into ``./results``::

    python -m repro all --output-dir results

Regenerate only Figure 4 at the full Section 6.1 scale (slow)::

    python -m repro fig4 --paper-scale --output-dir results

Each command writes one plain-text report per figure (plus a CSV of the
Figure 4 time series) and prints the report to stdout.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
from typing import Callable, Sequence

from repro.experiments.churn import (
    DEFAULT_CHURN_RATES,
    render_churn_sweep,
    run_churn_sweep,
)
from repro.experiments.fig1_fig2 import run_figure1_figure2
from repro.experiments.fig3 import run_figure3
from repro.experiments.fig4 import run_figure4
from repro.experiments.fig5 import run_figure5
from repro.experiments.reporting import (
    render_figure3,
    render_figure4,
    render_figure5,
    series_to_csv,
)
from repro.experiments.runner import ExperimentScale
from repro.fuzz.oracle import ORACLES
from repro.experiments.shard_scaling import (
    DEFAULT_CHURN_VARIANTS,
    DEFAULT_PARTITION_MODES,
    DEFAULT_SHARD_COUNTS,
    render_shard_scaling,
    run_shard_scaling,
)
from repro.dht.partition import PARTITION_KINDS
from repro.net import TRANSPORT_KINDS, TRANSPORTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the figures of the CLASH paper (ICDCS 2004).",
    )
    parser.add_argument(
        "figure",
        choices=["fig1", "fig3", "fig4", "fig5", "churn", "shards", "fuzz", "repro", "all"],
        help="which figure to regenerate ('fig1' covers Figures 1 and 2; "
        "'churn' and 'shards' are the beyond-the-paper membership-churn and "
        "shard-scaling sweeps; 'fuzz' runs the adversarial schedule fuzzer "
        "and 'repro' replays one of its artifacts — neither is part of "
        "'all')",
    )
    parser.add_argument(
        "--output-dir",
        type=pathlib.Path,
        default=pathlib.Path("results"),
        help="directory the text reports are written to (default: ./results)",
    )
    parser.add_argument(
        "--scale-factor",
        type=int,
        default=10,
        help="down-scaling factor for the simulations (default: 10)",
    )
    parser.add_argument(
        "--phase-periods",
        type=int,
        default=8,
        help="load-check periods per workload phase at reduced scale (default: 8)",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run the full 1000-server / 100,000-client configuration (slow)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=20040324,
        help="master random seed (every figure run is reproducible from it)",
    )
    parser.add_argument(
        "--transport",
        choices=list(TRANSPORT_KINDS),
        default="inline",
        help="transport protocol messages travel through: "
        + "; ".join(f"'{spec.kind}' — {spec.summary}" for spec in TRANSPORTS.values())
        + " (default: inline)",
    )
    parser.add_argument(
        "--link-latency",
        type=float,
        default=0.0,
        help="one-way message latency in seconds for the time-modelling "
        "transports (event, async; ignored by the others; default: 0)",
    )
    parser.add_argument(
        "--join-rate",
        type=float,
        default=None,
        help="Poisson server-join rate in events/sec applied to every "
        "scenario phase (default: 0 = no churn; for the 'churn' command an "
        "explicit value pins a single sweep point)",
    )
    parser.add_argument(
        "--fail-rate",
        type=float,
        default=None,
        help="Poisson server-failure rate in events/sec applied to every "
        "scenario phase (default: 0 = no churn; for the 'churn' command an "
        "explicit value pins a single sweep point)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="number of Chord ring shards the key space is partitioned "
        "across (power of two; default: 1 = the paper's single global ring; "
        "for the 'shards' command an explicit value pins a single sweep "
        "point instead of sweeping "
        + "/".join(str(count) for count in DEFAULT_SHARD_COUNTS)
        + ")",
    )
    parser.add_argument(
        "--partition",
        choices=PARTITION_KINDS,
        default=None,
        help="partition map governing the key-space -> shard split "
        "(default: static, the equal top-bits prefix ranges; 'adaptive' "
        "rebalances boundaries from observed load and needs --shards > 1; "
        "for the 'shards' command an explicit value pins the sweep to that "
        "mode instead of sweeping "
        + "/".join(DEFAULT_PARTITION_MODES)
        + ")",
    )
    parser.add_argument(
        "--verify-invariants",
        action="store_true",
        help="run the full protocol invariant pass after every membership "
        "event and at every period boundary (slower; catches corruption at "
        "the moment it happens)",
    )
    fuzz = parser.add_argument_group(
        "fuzzing", "options for the 'fuzz' and 'repro' commands"
    )
    fuzz.add_argument(
        "--fuzz-budget",
        type=int,
        default=16,
        help="maximum number of fuzz cases to run (default: 16)",
    )
    fuzz.add_argument(
        "--fuzz-seeds",
        default="0:8",
        help="seed axis of the sweep: 'START:STOP' for a range or a "
        "comma-separated list (default: 0:8)",
    )
    fuzz.add_argument(
        "--fuzz-transports",
        default="async,event",
        help="comma-separated transport kinds to sweep (default: async,event)",
    )
    fuzz.add_argument(
        "--fuzz-shards",
        default="1,2",
        help="comma-separated shard counts to sweep (default: 1,2)",
    )
    fuzz.add_argument(
        "--fuzz-full-scan",
        action="store_true",
        help="sweep the balance-pass mode too: every structural variant runs "
        "both with the incremental work-queue pass and with the reference "
        "probe-everyone scan (doubles the grid; keeps both paths under the "
        "oracle)",
    )
    fuzz.add_argument(
        "--fuzz-oracle",
        choices=sorted(ORACLES),
        default="invariants",
        help="which oracle to run at every quiescent point (default: invariants)",
    )
    fuzz.add_argument(
        "--shrink-budget",
        type=int,
        default=192,
        help="maximum replays ddmin may spend minimising one finding "
        "(default: 192)",
    )
    fuzz.add_argument(
        "--artifact",
        type=pathlib.Path,
        default=None,
        help="repro artifact JSON to replay (required by the 'repro' command)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="only write files, do not print the reports to stdout",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the figure generation under cProfile, write the raw stats "
        "to <output-dir>/profile.pstats and print a top-N cumulative-time "
        "table (for before/after comparisons in performance work)",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        help="number of functions shown in the --profile table (default: 25)",
    )
    return parser


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    if args.paper_scale:
        scale = ExperimentScale.paper()
    else:
        scale = ExperimentScale.scaled(
            factor=args.scale_factor, phase_periods=args.phase_periods
        )
    return dataclasses.replace(
        scale,
        seed=args.seed,
        transport=args.transport,
        link_latency=args.link_latency,
        join_rate=args.join_rate if args.join_rate is not None else 0.0,
        fail_rate=args.fail_rate if args.fail_rate is not None else 0.0,
        shards=args.shards if args.shards is not None else 1,
        partition=args.partition if args.partition is not None else "static",
        verify_invariants=args.verify_invariants,
    )


def _write(output_dir: pathlib.Path, name: str, text: str, quiet: bool) -> pathlib.Path:
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / name
    path.write_text(text + "\n", encoding="utf-8")
    if not quiet:
        print(text)
        print(f"[written to {path}]")
    return path


def _run_fig1(args: argparse.Namespace) -> list[pathlib.Path]:
    result = run_figure1_figure2(seed=args.seed)
    text = "\n".join(
        [
            "Figure 1 — binary splitting tree (replayed split sequence)",
            "",
            result.tree_text,
            "",
            "Figure 2 — work table of the splitting server",
            "",
            result.table_text,
        ]
    )
    return [_write(args.output_dir, "figure1_figure2.txt", text, args.quiet)]


def _run_fig3(args: argparse.Namespace) -> list[pathlib.Path]:
    result = run_figure3(seed=args.seed)
    return [_write(args.output_dir, "figure3.txt", render_figure3(result), args.quiet)]


def _run_fig4(args: argparse.Namespace) -> list[pathlib.Path]:
    scale = _scale_from_args(args)
    result = run_figure4(scale)
    written = [_write(args.output_dir, "figure4.txt", render_figure4(result), args.quiet)]
    series = list(result.max_load_series().values())
    written.append(
        _write(
            args.output_dir,
            "figure4_max_load_series.csv",
            series_to_csv(series),
            quiet=True,
        )
    )
    return written


def _run_fig5(args: argparse.Namespace) -> list[pathlib.Path]:
    scale = _scale_from_args(args)
    result = run_figure5(scale)
    return [_write(args.output_dir, "figure5.txt", render_figure5(result), args.quiet)]


def _run_churn(args: argparse.Namespace) -> list[pathlib.Path]:
    scale = _scale_from_args(args)
    # Explicit --join-rate/--fail-rate (including explicit zeros) pin a
    # single sweep point; otherwise the default rate ladder is swept.
    if args.join_rate is not None or args.fail_rate is not None:
        rates = ((scale.join_rate, scale.fail_rate),)
    else:
        rates = DEFAULT_CHURN_RATES
    result = run_churn_sweep(scale, rates=rates)
    return [_write(args.output_dir, "churn.txt", render_churn_sweep(result), args.quiet)]


def _run_shards(args: argparse.Namespace) -> list[pathlib.Path]:
    scale = _scale_from_args(args)
    # An explicit --shards (any value, including 1) pins a single sweep
    # point; otherwise the default shard-count ladder is swept.
    counts = (args.shards,) if args.shards is not None else DEFAULT_SHARD_COUNTS
    # Explicit churn knobs pin the churn variants too (mirroring 'churn');
    # the scale already carries the parsed rates, 0.0 for whichever was
    # omitted.
    if args.join_rate is not None or args.fail_rate is not None:
        churn_rates = ((scale.join_rate, scale.fail_rate),)
    else:
        churn_rates = DEFAULT_CHURN_VARIANTS
    # An explicit --partition pins the sweep to that mode; the default
    # sweeps static and adaptive side by side.
    partition_modes = (
        (args.partition,) if args.partition is not None else DEFAULT_PARTITION_MODES
    )
    result = run_shard_scaling(
        scale,
        shard_counts=counts,
        churn_rates=churn_rates,
        partition_modes=partition_modes,
    )
    return [
        _write(args.output_dir, "shard_scaling.txt", render_shard_scaling(result), args.quiet)
    ]


def _parse_seed_axis(text: str) -> tuple[int, ...]:
    """Parse --fuzz-seeds: 'START:STOP' (half-open range) or 'a,b,c'."""
    text = text.strip()
    if ":" in text:
        start_text, stop_text = text.split(":", 1)
        start, stop = int(start_text), int(stop_text)
        if stop <= start:
            raise ValueError(f"empty seed range {text!r}")
        return tuple(range(start, stop))
    return tuple(int(part) for part in text.split(",") if part.strip())


def _run_fuzz_command(args: argparse.Namespace) -> int:
    """The 'fuzz' command: sweep, shrink, write artifacts; exit 1 on findings."""
    from repro.fuzz import FuzzPlan, build_oracle, render_report, run_fuzz
    from repro.fuzz.fuzzer import DEFAULT_CHURN_RATES as FUZZ_CHURN_RATES

    transports = tuple(
        part.strip() for part in args.fuzz_transports.split(",") if part.strip()
    )
    for kind in transports:
        if kind not in TRANSPORT_KINDS:
            raise SystemExit(f"unknown fuzz transport {kind!r}")
    shards = tuple(
        int(part) for part in args.fuzz_shards.split(",") if part.strip()
    )
    # Explicit churn knobs pin a single (join, fail) variant, mirroring the
    # 'churn' command; otherwise both the calm and churning variants run.
    if args.join_rate is not None or args.fail_rate is not None:
        churn_rates = ((args.join_rate or 0.0, args.fail_rate or 0.0),)
    else:
        churn_rates = FUZZ_CHURN_RATES
    plan = FuzzPlan(
        transports=transports,
        shards=shards,
        seeds=_parse_seed_axis(args.fuzz_seeds),
        churn_rates=churn_rates,
        full_scans=(False, True) if args.fuzz_full_scan else (False,),
        budget=args.fuzz_budget,
        scale_factor=args.scale_factor,
        phase_periods=args.phase_periods,
        oracle=args.fuzz_oracle,
        shrink_budget=args.shrink_budget,
    )
    try:
        build_oracle(plan.oracle, plan.oracle_params)
    except (TypeError, ValueError) as error:
        raise SystemExit(
            f"oracle {plan.oracle!r} needs parameters the CLI cannot supply "
            f"({error}); use --fuzz-oracle invariants"
        ) from error
    report = run_fuzz(
        plan,
        output_dir=args.output_dir,
        log=None if args.quiet else print,
    )
    _write(args.output_dir, "fuzz.txt", render_report(report), args.quiet)
    return 0 if report.clean else 1


def _run_repro_command(args: argparse.Namespace) -> int:
    """The 'repro' command: replay an artifact; exit 0 iff it reproduces."""
    from repro.fuzz import ReproArtifact, replay_artifact

    if args.artifact is None:
        raise SystemExit("the 'repro' command requires --artifact PATH")
    try:
        artifact = ReproArtifact.load(args.artifact)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot load artifact {str(args.artifact)!r}: {error}") from error
    outcome = replay_artifact(artifact)
    reproduced = (
        outcome.violation is not None
        and outcome.violation.check == artifact.failure_check
    )
    if not args.quiet:
        print(f"case:     {artifact.case.case_id()}")
        print(f"oracle:   {artifact.oracle}")
        print(f"expected: {artifact.failure_check} — {artifact.failure_message}")
        if outcome.violation is None:
            print("replay:   no violation (NOT reproduced)")
        else:
            print(
                f"replay:   {outcome.violation.check} — {outcome.violation.detail}"
                + ("" if reproduced else " (different check — NOT reproduced)")
            )
    return 0 if reproduced else 1


_COMMANDS: dict[str, Callable[[argparse.Namespace], list[pathlib.Path]]] = {
    "fig1": _run_fig1,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "churn": _run_churn,
    "shards": _run_shards,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # The fuzz/repro commands have pass/fail exit codes of their own and are
    # deliberately excluded from 'all'.
    if args.figure == "fuzz":
        return _run_fuzz_command(args)
    if args.figure == "repro":
        return _run_repro_command(args)
    figures = list(_COMMANDS) if args.figure == "all" else [args.figure]
    written: list[pathlib.Path] = []

    def generate() -> None:
        for figure in figures:
            written.extend(_COMMANDS[figure](args))

    if args.profile:
        import cProfile
        import pstats

        from repro.experiments.reporting import render_profile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            generate()
        finally:
            # Write the profile even when generation dies part-way — a run
            # slow enough to be interrupted is exactly the one worth
            # profiling.
            profiler.disable()
            args.output_dir.mkdir(parents=True, exist_ok=True)
            stats_path = args.output_dir / "profile.pstats"
            profiler.dump_stats(stats_path)
            stats = pstats.Stats(profiler)
            print()
            print(f"Profile — top {args.profile_top} functions by cumulative time")
            print(render_profile(stats, top=args.profile_top))
            print(f"[raw stats written to {stats_path}]")
    else:
        generate()
    if not args.quiet:
        print(f"\n{len(written)} report file(s) written to {args.output_dir}/")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
