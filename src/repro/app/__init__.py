"""The streaming continuous-query application model.

The paper's evaluation simulates a "pseudo-distributed system for supporting
long-lived queries over streaming data" (Section 6): servers store persistent
queries and process transient data packets, and a server's load is linear in
the data rate it handles and logarithmic in the number of queries it stores.
This package provides that application substrate:

* :class:`~repro.app.load_model.LoadModel` — the load function and the
  overload / underload threshold tests.
* :class:`~repro.app.query_store.QueryStore` — per-key-group storage of
  persistent queries, with the subset extraction needed when a group splits
  and its queries migrate to the child server.
* :class:`~repro.app.streams.VirtualStream` — the client-side notion of a
  virtual stream: a run of data packets sharing one identifier key, whose key
  changes every ``Ld`` packets on average.
"""

from repro.app.load_model import LoadModel
from repro.app.query_store import Query, QueryStore
from repro.app.streams import DataPacket, VirtualStream

__all__ = [
    "LoadModel",
    "Query",
    "QueryStore",
    "DataPacket",
    "VirtualStream",
]
