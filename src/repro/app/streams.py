"""Virtual streams: runs of data packets sharing a single identifier key.

The paper models each data source as producing packets at a constant rate,
with the packet key changing every ``Ld`` packets on average (the *virtual
stream length*).  A client performs a fresh CLASH lookup at the start of each
virtual stream — and again if it is redirected mid-stream by a split or merge
— but otherwise sends packets directly to the cached server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.keys.identifier import IdentifierKey
from repro.util.rng import RandomStream
from repro.util.validation import check_positive

__all__ = ["DataPacket", "VirtualStream"]


@dataclass(frozen=True)
class DataPacket:
    """One data packet within a virtual stream.

    Attributes:
        key: The identifier key the packet is published under.
        source: Name of the producing data source.
        sequence: Packet index within the virtual stream.
        timestamp: Simulation time the packet was generated.
    """

    key: IdentifierKey
    source: str
    sequence: int
    timestamp: float


class VirtualStream:
    """A data source's current run of packets under one identifier key.

    Args:
        source: Name of the data source.
        key: The identifier key for this stream.
        rate: Packet rate in packets/second.
        mean_length: Mean virtual stream length ``Ld``; the actual length is
            drawn from an exponential distribution as in the paper.
        rng: Random stream used to draw the length.
        started_at: Simulation time the stream began.
    """

    def __init__(
        self,
        source: str,
        key: IdentifierKey,
        rate: float,
        mean_length: float,
        rng: RandomStream,
        started_at: float = 0.0,
    ) -> None:
        check_positive("rate", rate)
        check_positive("mean_length", mean_length)
        self._source = source
        self._key = key
        self._rate = rate
        self._started_at = started_at
        self._sequence = 0
        self._length = max(1, round(rng.exponential(mean_length)))

    @property
    def source(self) -> str:
        """Name of the producing data source."""
        return self._source

    @property
    def key(self) -> IdentifierKey:
        """The identifier key shared by every packet of the stream."""
        return self._key

    @property
    def rate(self) -> float:
        """Packet rate in packets per second."""
        return self._rate

    @property
    def length(self) -> int:
        """Total number of packets this stream will carry before the key changes."""
        return self._length

    @property
    def packets_sent(self) -> int:
        """Packets emitted so far."""
        return self._sequence

    @property
    def exhausted(self) -> bool:
        """True once the stream has emitted all of its packets."""
        return self._sequence >= self._length

    @property
    def expected_duration(self) -> float:
        """Seconds the stream will last at its constant packet rate."""
        return self._length / self._rate

    def next_packet(self) -> DataPacket:
        """Emit the next packet (raises once the stream is exhausted)."""
        if self.exhausted:
            raise ValueError(
                f"virtual stream from {self._source} is exhausted after {self._length} packets"
            )
        packet = DataPacket(
            key=self._key,
            source=self._source,
            sequence=self._sequence,
            timestamp=self._started_at + self._sequence / self._rate,
        )
        self._sequence += 1
        return packet
