"""Per-server storage of persistent (continuous) queries.

Queries are long-lived objects registered under an identifier key; when a key
group splits, the queries whose keys fall into the right child must migrate to
the child server, and the number of migrated queries is charged as
state-transfer overhead (paper Section 6.3, case B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.keys.identifier import IdentifierKey
from repro.keys.keygroup import KeyGroup

__all__ = ["Query", "QueryStore"]


@dataclass(frozen=True)
class Query:
    """A persistent continuous query registered by a client.

    Attributes:
        query_id: Unique identifier of the query.
        key: The identifier key (i.e. the content region) the query targets.
        client: Name of the querying client, for reporting.
        expires_at: Simulation time at which the query's lifetime ends
            (``math.inf`` for non-expiring queries).
    """

    query_id: int
    key: IdentifierKey
    client: str = "client"
    expires_at: float = float("inf")


class QueryStore:
    """Holds the queries currently assigned to one server.

    The store indexes queries by identifier key so that the subset migrating
    with a split-off key group can be extracted in time proportional to the
    number of affected queries.
    """

    def __init__(self) -> None:
        self._queries: dict[int, Query] = {}
        #: Monotonic counter bumped by every mutation.  Load caches key on
        #: it (a plain attribute: the staleness probe is extremely hot): a
        #: server's cached per-group loads stay valid exactly as long as the
        #: store (and the other load inputs) have not changed.
        self.version = 0
        #: Optional zero-argument callback fired on every mutation.  The
        #: owning server hooks this (like ``ServerTable.on_change``) so load
        #: staleness is pushed at mutation time instead of being re-derived
        #: from the version counters on every read.
        self.on_change = None

    def _bump(self) -> None:
        self.version += 1
        if self.on_change is not None:
            self.on_change()

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._queries

    def add(self, query: Query) -> None:
        """Register a query (rejects duplicate ids)."""
        if query.query_id in self._queries:
            raise ValueError(f"query id {query.query_id} is already registered")
        self._queries[query.query_id] = query
        self._bump()

    def add_all(self, queries: list[Query]) -> None:
        """Register several queries."""
        for query in queries:
            self.add(query)

    def remove(self, query_id: int) -> Query:
        """Deregister and return a query."""
        if query_id not in self._queries:
            raise KeyError(f"no query with id {query_id}")
        self._bump()
        return self._queries.pop(query_id)

    def queries(self) -> list[Query]:
        """All stored queries (unspecified order)."""
        return list(self._queries.values())

    def count_in_group(self, group: KeyGroup) -> int:
        """Number of stored queries whose keys fall in ``group``."""
        return sum(1 for query in self._queries.values() if group.contains_key(query.key))

    def extract_group(self, group: KeyGroup) -> list[Query]:
        """Remove and return the queries whose keys fall in ``group``.

        This is the migration step of a split: the extracted queries are
        shipped to the server accepting the group.
        """
        moving = [
            query for query in self._queries.values() if group.contains_key(query.key)
        ]
        for query in moving:
            del self._queries[query.query_id]
        if moving:
            self._bump()
        return moving

    def expire(self, now: float) -> list[Query]:
        """Remove and return every query whose lifetime has ended."""
        expired = [query for query in self._queries.values() if query.expires_at <= now]
        for query in expired:
            del self._queries[query.query_id]
        if expired:
            self._bump()
        return expired
