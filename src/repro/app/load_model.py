"""The server load model for streaming continuous-query processing.

Section 6 of the paper: "each server periodically computes a load value, based
on the number of queries it currently stores and the cumulative data rate it
currently handles.  For query-processing applications, this load is usually
linear in the data rate, and logarithmic in the number of queries."  Overload
and underload are detected by comparing the load against fixed thresholds
(90 % and 54 % of capacity respectively).
"""

from __future__ import annotations

import math

from repro.core.config import ClashConfig
from repro.util.validation import check_non_negative, check_type

__all__ = ["LoadModel"]


class LoadModel:
    """Compute server / key-group load from data rate and stored query count.

    Args:
        config: Protocol configuration carrying the capacity, the thresholds
            and the two load weights.
    """

    def __init__(self, config: ClashConfig) -> None:
        check_type("config", config, ClashConfig)
        self._config = config
        # The config is frozen, so the derived thresholds are computed once;
        # the overload/underload probes run hot inside every load check.
        self._overload_load = config.overload_load
        self._underload_load = config.underload_load

    @property
    def config(self) -> ClashConfig:
        """The configuration this model evaluates against."""
        return self._config

    def load(self, data_rate: float, query_count: float = 0.0) -> float:
        """Absolute load (units/sec): linear in rate, logarithmic in queries.

        ``load = w_rate * rate + w_query * log2(1 + queries)``
        """
        check_non_negative("data_rate", data_rate)
        check_non_negative("query_count", query_count)
        return (
            self._config.data_rate_weight * data_rate
            + self._config.query_load_weight * math.log2(1.0 + query_count)
        )

    def load_fraction(self, data_rate: float, query_count: float = 0.0) -> float:
        """Load expressed as a fraction of server capacity (1.0 = 100 %)."""
        return self.load(data_rate, query_count) / self._config.server_capacity

    def load_percent(self, data_rate: float, query_count: float = 0.0) -> float:
        """Load expressed as a percentage of server capacity (the paper's plots)."""
        return 100.0 * self.load_fraction(data_rate, query_count)

    def is_overloaded(self, total_load: float) -> bool:
        """True if an absolute load exceeds the overload threshold."""
        check_non_negative("total_load", total_load)
        return total_load > self._overload_load

    def is_underloaded(self, total_load: float) -> bool:
        """True if an absolute load is below the underload threshold."""
        check_non_negative("total_load", total_load)
        return total_load < self._underload_load

    def is_cold(self, group_load: float) -> bool:
        """True if a single group's load is low enough to consider consolidating.

        A pair of sibling leaves is merged only when their *combined* load
        would still leave the parent below the overload threshold; the
        per-group coldness test uses half the underload threshold so that the
        merged parent starts comfortably below it.
        """
        check_non_negative("group_load", group_load)
        return group_load <= 0.5 * self._config.underload_load

    def siblings_mergeable(self, left_load: float, right_load: float) -> bool:
        """True if two sibling leaf loads are jointly cold enough to merge."""
        check_non_negative("left_load", left_load)
        check_non_negative("right_load", right_load)
        return (left_load + right_load) < self._config.underload_load
