"""repro — a reproduction of CLASH (Content and Load-Aware Scalable Hashing).

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from repro.core import (
    ClashClient,
    ClashConfig,
    ClashServer,
    ClashSystem,
    DepthSearchResult,
    SplitOutcome,
)
from repro.keys import IdentifierKey, KeyGroup, QuadTreeEncoder, RandomKeyGenerator

__all__ = [
    "__version__",
    "ClashConfig",
    "ClashSystem",
    "ClashServer",
    "ClashClient",
    "DepthSearchResult",
    "SplitOutcome",
    "KeyGroup",
    "IdentifierKey",
    "RandomKeyGenerator",
    "QuadTreeEncoder",
]
