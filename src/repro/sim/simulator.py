"""The flow-level CLASH simulator behind the paper-scale experiments.

The simulator advances in LOAD_CHECK_PERIOD steps (5 minutes in the paper).
Each period it:

1. looks up the active workload phase (A → B → C),
2. assigns every active key group its *expected* data rate and stored-query
   count under that workload (see :class:`~repro.sim.loadmeasure.LoadMeasure`),
3. lets the CLASH protocol react — overloaded servers split their hottest
   groups, under-loaded servers exchange load reports and consolidate cold
   sibling pairs — iterating load assignment and load checks until the
   configuration stabilises for the period,
4. charges the period's client traffic: every virtual-stream key change and
   every newly arriving query performs a real depth-discovery search (a sample
   of searches is executed through the actual client/server message exchange
   and the remainder is extrapolated from the sampled cost), and clients
   redirected by splits or merges re-resolve their keys,
5. records a :class:`~repro.sim.metrics.PeriodSample`.

The same class also runs the *fixed-depth* baseline (``DHT(x)``): the key
space is partitioned once at depth ``x`` and no splits or merges ever happen,
which is exactly the paper's non-adaptive comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ClashConfig
from repro.core.messages import MessageCategory
from repro.core.protocol import ClashSystem
from repro.dht.partition import PARTITION_KINDS, LoadProportionalPartition, PartitionMap
from repro.net import TRANSPORT_KINDS, ConstantLatency, build_transport, transport_spec
from repro.net.replay import ChurnEvent, RebalanceEvent, ReplaySchedule
from repro.sim.engine import SimulationEngine
from repro.sim.loadmeasure import LoadMeasure
from repro.sim.metrics import (
    MetricsRecorder,
    PeriodSample,
    PhaseSummary,
    diff_sample_streams,
)
from repro.util.rng import SeedSequenceFactory
from repro.util.stats import mean
from repro.util.validation import check_positive, check_power_of_two, check_type
from repro.workload.distributions import WorkloadSpec
from repro.workload.queries import QueryPopulation
from repro.workload.scenario import PhasedScenario, ScenarioPhase
from repro.workload.sources import SourcePopulation

__all__ = ["SimulationParams", "SimulationResult", "FlowSimulator"]


@dataclass(frozen=True)
class SimulationParams:
    """Scale and workload parameters of one simulation run.

    The paper's full-scale configuration is 1000 servers, 100,000 data-source
    client nodes (plus 50,000 query clients in Figure 5's case B), Ld = 1000
    packets, Lq = 30 minutes and a 6-hour scenario; :meth:`paper_scale`
    returns exactly that.  The default values are a scaled-down configuration;
    to preserve the per-server load levels the server capacity must be scaled
    with it, which :func:`repro.experiments.runner.scaled_setup` does —
    see DESIGN.md §2 for the substitution rationale.

    Attributes:
        server_count: Number of peer servers in the overlay.
        source_count: Number of data sources.
        query_client_count: Number of persistent-query clients (0 for the
            "no query clients" case of Figure 5).
        mean_stream_length: Virtual stream length Ld in packets.
        mean_query_lifetime: Query lifetime Lq in seconds.
        seed: Master seed for all random streams.
        lookup_sample_size: Number of real (message-level) depth searches
            executed per period to estimate the per-lookup message cost.
        max_balance_iterations: Upper bound on assign-loads / load-check
            iterations per period.
        max_splits_per_server_per_iteration: Splits one server may perform in
            a single load-check pass.
        transport: Which transport carries protocol messages — one of
            :data:`repro.net.TRANSPORT_KINDS`: ``"inline"`` (synchronous, the
            seed semantics), ``"event"`` (event-kernel delivery with
            simulated latency), ``"batching"`` (per-period coalescing),
            ``"async"`` (asyncio event loop with awaitable handlers),
            ``"replay"`` (recorded delivery schedules) or ``"socket"``
            (one worker process per shard over msgpack frames).
        link_latency: Base one-way message latency in seconds (transports
            that model time — ``event`` and ``async``; scenario phases may
            override it).
        latency_jitter: Half-width of uniform per-message jitter around
            ``link_latency`` (time-modelling transports only).
        per_hop_latency: Extra latency per Chord routing hop (time-modelling
            transports only).
        shards: Number of independent Chord rings the key space is
            partitioned across (power of two; ``1`` = the paper's single
            global ring, bit-identical to the pre-sharding behaviour).  The
            selected transport must be shard-aware
            (:attr:`repro.net.registry.TransportSpec.shard_aware`) when
            ``shards > 1``.
        force_full_stabilise: Force every ring onto the from-scratch
            stabilisation path instead of the incremental repair.  Routing
            outcomes are identical either way (the incremental repair is
            bit-exact); this is the reference mode the equivalence suite and
            the paper-scale benchmark compare against.
        force_full_load_scan: Force every balance pass onto the reference
            every-server scan (and full load-report exchange) instead of the
            dirty-driven work queues and report-diff delivery.  Metric
            streams are identical either way (the incremental pass is
            bit-exact); this is the reference mode the equivalence suite
            compares against.
        verify_invariants: Run :meth:`~repro.core.protocol.ClashSystem.\
verify_invariants` after every membership event and at every period
            boundary.  Off by default (it is pure overhead on a healthy run);
            the churn test suites and the schedule fuzzer turn it on.
        delivery_seed: Independent seed for the async transport's ready-order
            tie-breaking.  ``None`` derives the stream from ``seed`` as
            before (bit-identical to prior behaviour); setting it lets the
            fuzzer sweep delivery schedules without touching the workload.
        churn_seed: Independent seed for the Poisson join/failure arrival
            streams.  ``None`` derives them from ``seed`` as before; setting
            it lets the fuzzer sweep churn timings independently.
        partition: Which partition map governs the key-space → shard split —
            one of :data:`repro.dht.partition.PARTITION_KINDS`: ``"static"``
            (equal top-bits prefix ranges, the pre-refactor behaviour,
            bit-identical) or ``"adaptive"`` (boundaries recomputed from the
            workload's expected per-prefix load at each period boundary, with
            moved key groups migrated between shards online).  Requires
            ``shards > 1`` when adaptive.
    """

    server_count: int = 100
    source_count: int = 10_000
    query_client_count: int = 0
    mean_stream_length: float = 1000.0
    mean_query_lifetime: float = 1800.0
    seed: int = 20040324
    lookup_sample_size: int = 40
    max_balance_iterations: int = 30
    max_splits_per_server_per_iteration: int = 1
    transport: str = "inline"
    link_latency: float = 0.0
    latency_jitter: float = 0.0
    per_hop_latency: float = 0.0
    shards: int = 1
    force_full_stabilise: bool = False
    force_full_load_scan: bool = False
    verify_invariants: bool = False
    delivery_seed: int | None = None
    churn_seed: int | None = None
    partition: str = "static"

    def __post_init__(self) -> None:
        check_type("force_full_stabilise", self.force_full_stabilise, bool)
        check_type("force_full_load_scan", self.force_full_load_scan, bool)
        check_type("verify_invariants", self.verify_invariants, bool)
        for name in ("delivery_seed", "churn_seed"):
            value = getattr(self, name)
            if value is not None:
                check_type(name, value, int)
        check_type("server_count", self.server_count, int)
        check_type("source_count", self.source_count, int)
        check_type("query_client_count", self.query_client_count, int)
        check_positive("server_count", self.server_count)
        check_positive("source_count", self.source_count)
        if self.query_client_count < 0:
            raise ValueError(
                f"query_client_count must be non-negative, got {self.query_client_count}"
            )
        check_positive("mean_stream_length", self.mean_stream_length)
        check_positive("mean_query_lifetime", self.mean_query_lifetime)
        check_type("lookup_sample_size", self.lookup_sample_size, int)
        check_positive("lookup_sample_size", self.lookup_sample_size)
        check_positive("max_balance_iterations", self.max_balance_iterations)
        check_positive(
            "max_splits_per_server_per_iteration", self.max_splits_per_server_per_iteration
        )
        if self.transport not in TRANSPORT_KINDS:
            raise ValueError(
                f"transport must be one of {', '.join(TRANSPORT_KINDS)}, "
                f"got {self.transport!r}"
            )
        for name in ("link_latency", "latency_jitter", "per_hop_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative, got {getattr(self, name)}")
            if getattr(self, name) > 0 and not transport_spec(self.transport).models_time:
                # An engine-less transport (inline, batching, socket) has no
                # clock to charge latency against; silently ignoring the knob
                # would misreport the run's configuration.
                raise ValueError(
                    f"{name} requires a time-modelling transport "
                    f"(transport {self.transport!r} does not model time)"
                )
        check_power_of_two("shards", self.shards)
        if self.shards > self.server_count:
            raise ValueError(
                f"cannot spread {self.server_count} servers over {self.shards} "
                "shards; every shard needs at least one server"
            )
        if self.shards > 1 and not transport_spec(self.transport).shard_aware:
            raise ValueError(
                f"transport {self.transport!r} is not shard-aware; "
                "sharded runs need per-shard endpoint namespacing"
            )
        if self.partition not in PARTITION_KINDS:
            raise ValueError(
                f"partition must be one of {', '.join(PARTITION_KINDS)}, "
                f"got {self.partition!r}"
            )
        if self.partition != "static" and self.shards <= 1:
            raise ValueError(
                "an adaptive partition needs shards > 1; a single ring has "
                "no shard boundaries to move"
            )

    @classmethod
    def paper_scale(cls, query_clients: bool = False, mean_stream_length: float = 1000.0) -> "SimulationParams":
        """The full Section 6.1 configuration (slow: minutes of wall-clock time)."""
        return cls(
            server_count=1000,
            source_count=100_000,
            query_client_count=50_000 if query_clients else 0,
            mean_stream_length=mean_stream_length,
        )

    @classmethod
    def scaled(cls, factor: int = 10, query_clients: bool = False, **overrides) -> "SimulationParams":
        """A configuration scaled down by ``factor`` from the paper scale.

        Server count, source count and query-client count shrink together.
        Per-server *load levels* are only preserved if the server capacity in
        :class:`~repro.core.config.ClashConfig` is scaled by the same factor;
        :func:`repro.experiments.runner.scaled_setup` builds a consistent
        (config, params) pair.
        """
        check_positive("factor", factor)
        params = {
            "server_count": max(10, 1000 // factor),
            "source_count": max(200, 100_000 // factor),
            "query_client_count": (max(100, 50_000 // factor) if query_clients else 0),
        }
        params.update(overrides)
        return cls(**params)


@dataclass
class SimulationResult:
    """Output of one simulation run.

    Attributes:
        label: Human-readable label, e.g. ``"CLASH"`` or ``"DHT(6)"``.
        params: The run's scale parameters.
        config: The protocol configuration used.
        metrics: Per-period samples (see :class:`MetricsRecorder`).
        final_active_groups: Number of active key groups at the end of the run.
        total_splits: Splits performed over the whole run.
        total_merges: Consolidations performed over the whole run.
    """

    label: str
    params: SimulationParams
    config: ClashConfig
    metrics: MetricsRecorder
    final_active_groups: int = 0
    total_splits: int = 0
    total_merges: int = 0
    notes: dict[str, float] = field(default_factory=dict)

    def phase_summaries(self) -> list[PhaseSummary]:
        """Per-workload-phase aggregates."""
        return self.metrics.phase_summaries()

    def diff(self, reference: "SimulationResult") -> list[str]:
        """Every difference from ``reference``, down to field and period.

        The single statement of run equivalence (bit-identical ⇔ empty list):
        run totals first, then the per-period field diff from
        :func:`repro.sim.metrics.diff_sample_streams`.  Both the golden test
        harness and ``benchmarks/bench_async.py`` assert on this.
        """
        differences = [
            f"{name}: {getattr(self, name)!r}, expected {getattr(reference, name)!r}"
            for name in ("total_splits", "total_merges", "final_active_groups")
            if getattr(self, name) != getattr(reference, name)
        ]
        differences.extend(
            diff_sample_streams(self.metrics.samples, reference.metrics.samples)
        )
        return differences


class FlowSimulator:
    """Simulate a CLASH (or fixed-depth DHT) deployment over a phased scenario.

    Args:
        config: Protocol configuration.
        params: Scale parameters.
        scenario: The workload schedule (defaults to the paper's A → B → C).
        fixed_depth: When set, run the non-adaptive baseline ``DHT(fixed_depth)``
            instead of CLASH — the key space is partitioned once at that depth
            and load checks are disabled.
        schedule: A recorded :class:`~repro.net.replay.ReplaySchedule` to
            force this run onto.  Its tie tape drives the ``replay`` transport
            and, when :attr:`~repro.net.replay.ReplaySchedule.churn` is set,
            the recorded membership events are executed verbatim (with their
            recorded names and node ids) *instead of* drawing fresh Poisson
            arrivals — the churn RNG streams are never consumed, so the replay
            is a pure function of the schedule.
    """

    def __init__(
        self,
        config: ClashConfig,
        params: SimulationParams,
        scenario: PhasedScenario,
        fixed_depth: int | None = None,
        schedule: ReplaySchedule | None = None,
    ) -> None:
        check_type("config", config, ClashConfig)
        check_type("params", params, SimulationParams)
        self._params = params
        self._scenario = scenario
        self._fixed_depth = fixed_depth
        if fixed_depth is not None:
            if not 1 <= fixed_depth <= config.key_bits:
                raise ValueError(
                    f"fixed_depth must be in [1, {config.key_bits}], got {fixed_depth}"
                )
            # A fixed-depth run bootstraps at that depth and never adapts.
            bootstrap_depth = min(fixed_depth, 16)
            config = config.with_overrides(
                initial_depth=bootstrap_depth, min_depth=min(config.min_depth, bootstrap_depth)
            )
        self._config = config
        seeds = SeedSequenceFactory(params.seed)
        # The delivery-order axis is independently seedable: the fuzzer
        # sweeps tie-break schedules without perturbing any workload stream.
        if params.delivery_seed is not None:
            ready_stream = SeedSequenceFactory(params.delivery_seed).stream("async-ready")
        else:
            ready_stream = seeds.stream("async-ready")
        # The registry decides the execution model: transports that need the
        # discrete-event engine get one (and scenario churn runs on it);
        # clock-less transports — and the async transport, which owns its own
        # asyncio loop and virtual clock — drain churn at period boundaries.
        self._engine = (
            SimulationEngine() if transport_spec(params.transport).needs_engine else None
        )
        self._transport = build_transport(
            params.transport,
            engine=self._engine,
            link_latency=params.link_latency,
            latency_jitter=params.latency_jitter,
            per_hop_latency=params.per_hop_latency,
            rng=seeds.stream("latency"),
            ready_rng=ready_stream,
            schedule=schedule,
        )
        self._system = ClashSystem.create(
            config,
            server_count=params.server_count,
            rng=seeds.stream("ring"),
            bootstrap=False,
            transport=self._transport,
            shards=params.shards,
        )
        if params.force_full_stabilise:
            self._system.set_force_full_stabilise(True)
        if params.force_full_load_scan:
            self._system.force_full_load_scan = True
        self._system.bootstrap(config.initial_depth)
        self._churn_rng = seeds.stream("churn")
        # Poisson-arrival churn within phases.  Joins and failures draw from
        # their own named streams so enabling one never perturbs the other
        # (or any pre-existing stream: a churn-free run is byte-identical).
        # The churn timing axis, like delivery order, is independently
        # seedable for the fuzzer's sweeps.
        churn_seeds = (
            SeedSequenceFactory(params.churn_seed)
            if params.churn_seed is not None
            else seeds
        )
        self._join_rng = churn_seeds.stream("join-arrivals")
        self._fail_rng = churn_seeds.stream("fail-arrivals")
        # Forced churn: a replay schedule carrying recorded membership events
        # supersedes the Poisson streams entirely (see ``schedule`` above).
        self._forced_churn: tuple[ChurnEvent, ...] | None = (
            schedule.churn if schedule is not None else None
        )
        self._forced_churn_installed = False
        self._pending_churn: list[tuple[float, int, str | ChurnEvent]] = []
        # Engine-scheduled churn can fire in the middle of a protocol
        # exchange (the request pumps the kernel), when the system is in a
        # legitimately half-transferred state that must not be mutated or
        # invariant-checked.  Events arriving in an unsafe window are
        # deferred and applied at the next quiescent point.
        self._churn_safe = True
        self._deferred_churn: list[tuple[str | ChurnEvent, float]] = []
        self._join_counter = 0
        self._period_joins = 0
        self._period_failures = 0
        self._period_reassigned = 0
        self._dropped_seen = 0
        #: When True, every membership event is followed by a full
        #: ClashSystem.verify_invariants() pass (``params.verify_invariants``
        #: sets it; the churn test suites also flip it directly).
        self.verify_after_membership = params.verify_invariants
        #: When True, every *executed* Poisson membership event is appended
        #: to :attr:`churn_log` as a replayable ChurnEvent with its drawn
        #: name/node id pinned (the fuzz harness turns this on).
        self.record_churn = False
        self.churn_log: list[ChurnEvent] = []
        # Adaptive partitioning: boundaries recomputed at each period
        # boundary from the workload's expected per-prefix load.  A replay
        # schedule carrying recorded rebalances supersedes the live recompute
        # entirely (the maps install verbatim, pinned by version).
        self._adaptive_partition = params.partition == "adaptive" and params.shards > 1
        self._forced_rebalances: list[RebalanceEvent] | None = (
            sorted(schedule.rebalances, key=lambda event: (event.when, event.version))
            if schedule is not None and schedule.rebalances is not None
            else None
        )
        #: When True, every installed partition map is appended to
        #: :attr:`rebalance_log` as a replayable RebalanceEvent with its
        #: boundaries and version pinned (the fuzz harness turns this on).
        self.record_rebalances = False
        self.rebalance_log: list[RebalanceEvent] = []
        self._period_migrated = 0
        # Fuzz oracle hooks (see set_oracles): called at every quiescent
        # point — after membership events, after each balance iteration, and
        # at period boundaries.  None means no oracle is installed.
        self._invariant_oracle = None
        self._sample_oracle = None
        self._phase_index: int | None = None
        self._measures: dict[str, LoadMeasure] = {}
        first_spec = scenario.workload_at(0.0)
        self._sources = SourcePopulation(
            count=params.source_count,
            spec=first_spec,
            key_bits=config.key_bits,
            mean_stream_length=params.mean_stream_length,
            rng=seeds.stream("sources"),
        )
        self._queries = QueryPopulation(
            count=params.query_client_count,
            spec=first_spec,
            key_bits=config.key_bits,
            mean_lifetime=params.mean_query_lifetime,
            rng=seeds.stream("queries"),
        )
        self._lookup_keygen = self._sources.make_key_generator()
        self._lookup_client = self._system.make_client("sampling-client")
        self._recorder = MetricsRecorder()
        self._total_splits = 0
        self._total_merges = 0
        # Incremental load-assignment state: the measure the current
        # assignment was computed from, and the groups whose assignment has
        # been perturbed (by splits, merges, handoffs or churn) since then.
        # ``_force_full_assignment`` disables the incremental path — it exists
        # for the equivalence tests, which assert that dirty-group updates
        # reproduce a from-scratch assignment exactly.
        self._assigned_measure: LoadMeasure | None = None
        self._pending_dirty: set = set()
        self._pending_retired: list = []
        self._force_full_assignment = False

    @property
    def system(self) -> ClashSystem:
        """The simulated CLASH deployment (useful for inspection in tests)."""
        return self._system

    @property
    def transport(self):
        """The transport protocol messages travel through."""
        return self._transport

    @property
    def engine(self) -> SimulationEngine | None:
        """The event kernel (``None`` unless the event transport is active)."""
        return self._engine

    @property
    def label(self) -> str:
        """The run's label (CLASH, or DHT(x) for fixed-depth baselines)."""
        if self._fixed_depth is None:
            return "CLASH"
        return f"DHT({self._fixed_depth})"

    def set_oracles(self, invariant=None, sample=None) -> None:
        """Install fuzz-oracle callbacks fired at quiescent points.

        Args:
            invariant: ``callback(system)`` — called after every membership
                event, after every balance iteration's load check, and at
                each period boundary.  Raise to flag a violation.
            sample: ``callback(system, period_sample)`` — called once per
                period with the freshly built
                :class:`~repro.sim.metrics.PeriodSample` (metric sanity
                checks live here).
        """
        self._invariant_oracle = invariant
        self._sample_oracle = sample

    def _check_invariant_oracle(self) -> None:
        if self._invariant_oracle is not None:
            self._invariant_oracle(self._system)

    # ------------------------------------------------------------------ #
    # Load assignment
    # ------------------------------------------------------------------ #

    def _build_measure(self, spec: WorkloadSpec) -> LoadMeasure:
        # One memoized measure per workload: the prefix-probability cache
        # inside LoadMeasure then persists across periods of the same phase,
        # so repeated period assignments stop recomputing identical
        # expectations.
        measure = self._measures.get(spec.name)
        if measure is None or measure.spec is not spec:
            measure = LoadMeasure(
                spec=spec,
                total_rate=self._params.source_count * spec.source_rate,
                total_queries=float(self._params.query_client_count),
            )
            self._measures[spec.name] = measure
        return measure

    def _assign_loads(self, measure: LoadMeasure) -> None:
        """Give every active group its expected rate and query count (full pass)."""
        for server in self._system.servers().values():
            server.reset_interval()
        owners = self._system.active_groups()
        assignments = measure.assign_rates(owners)
        use_queries = self._params.query_client_count > 0
        for group, owner in owners.items():
            server = self._system.server(owner)
            rate, queries = assignments[group]
            server.set_group_rate(group, rate)
            if use_queries:
                server.set_group_query_count(group, queries)

    def _apply_dirty_assignments(
        self, measure: LoadMeasure, dirty: set, retired: list
    ) -> None:
        """Refresh only the groups whose assignment was perturbed.

        Every other active group still carries the exact expected values the
        last full pass (or a previous dirty refresh) wrote — the measure is
        unchanged, so rewriting them would store identical floats.  Two
        resets mirror what ``reset_interval`` did on the full path: child
        load reports are cleared everywhere, and measurements for retired
        ``(group, former owner)`` pairs are discarded (a stale query override
        would otherwise be resurrected if the group re-activates there).
        """
        # Under the report-diff exchange the standing reports ARE the state
        # (unchanged children never re-post); wiping them here would turn
        # every parent's report set stale forever.  The full exchange
        # re-posts everything each iteration, so the wipe is what keeps
        # reports from servers that lost their groups from lingering.
        if not self._system.report_diff_active:
            self._system.clear_all_child_reports()
        for group, former_owner in retired:
            try:
                server = self._system.server(former_owner)
            except KeyError:  # the former owner has since failed
                continue
            server.discard_measurements(group)
        use_queries = self._params.query_client_count > 0
        for group in sorted(dirty):
            owner = self._system.find_owner(group)
            if owner is None:
                # Split away or merged; only its active descendants/ancestor
                # (also in the dirty set) need fresh values.
                continue
            server = self._system.server(owner)
            rate, queries = measure.assignment(group)
            server.set_group_rate(group, rate)
            if use_queries:
                server.set_group_query_count(group, queries)

    def _sync_assignments(self, measure: LoadMeasure) -> None:
        """Bring every server's measured loads in line with ``measure``.

        A full assignment runs only when the workload changed (a new measure)
        or when the incremental path is disabled; otherwise only the groups
        touched since the last synchronisation are refreshed.
        """
        dirty = self._pending_dirty
        self._pending_dirty = set()
        dirty |= self._system.drain_touched_groups()
        retired = self._pending_retired
        self._pending_retired = []
        retired.extend(self._system.drain_retired_assignments())
        if measure is not self._assigned_measure or self._force_full_assignment:
            # reset_interval inside the full pass discards every measurement,
            # so the retired log is consumed by dropping it.
            self._assign_loads(measure)
            self._assigned_measure = measure
            return
        self._apply_dirty_assignments(measure, dirty, retired)

    def _server_load_percents(self) -> list[float]:
        """Load (as % of capacity) of every server that manages a group."""
        percents = []
        for owner in self._system.active_servers():
            percents.append(self._system.server(owner).load_percent())
        return percents

    def _shard_load_stats(self) -> tuple[tuple[float, ...], float]:
        """Per-shard peak load and the peak-to-mean shard-load imbalance.

        Only evaluated for sharded runs (``shards > 1``); the per-server
        ``load_percent`` reads hit the servers' interval caches, so this adds
        one dict walk per period, not a recomputation.
        """
        router = self._system.router
        count = router.shard_count
        peaks = [0.0] * count
        totals = [0.0] * count
        for owner in self._system.active_servers():
            shard = router.server_shard(owner)
            percent = self._system.server(owner).load_percent()
            if percent > peaks[shard]:
                peaks[shard] = percent
            totals[shard] += percent
        grand_total = sum(totals)
        imbalance = (max(totals) * count / grand_total) if grand_total > 0 else 0.0
        return tuple(peaks), imbalance

    # ------------------------------------------------------------------ #
    # Scenario environment knobs (churn, per-phase latency)
    # ------------------------------------------------------------------ #

    def _enter_phase(self, index: int) -> None:
        """Apply a newly entered phase's churn and latency knobs."""
        if index == self._phase_index:
            return
        self._phase_index = index
        phase: ScenarioPhase = self._scenario.phase_at(index)
        if phase.link_latency is not None:
            # No-op on transports that don't model time (inline, batching).
            self._transport.set_latency_model(ConstantLatency(phase.link_latency))
        if phase.fail_servers:
            # Sort once; removing each victim keeps the list identical to a
            # fresh sorted() of the surviving names, so the RNG draws match
            # the per-iteration re-sort this replaces.
            names = sorted(self._system.server_names())
            for _ in range(phase.fail_servers):
                if len(names) <= 1:
                    break
                victim = self._churn_rng.choice(names)
                if not self._system.can_remove_server(victim):
                    # Last server of its shard (sharded runs only): skip the
                    # victim without failing it, keeping the draw sequence.
                    names.remove(victim)
                    continue
                reassigned = self._system.handle_server_failure(victim)
                names.remove(victim)
                self._period_failures += 1
                self._period_reassigned += len(reassigned)
                if self.verify_after_membership:
                    self._system.verify_invariants()
                self._check_invariant_oracle()
        self._schedule_poisson_churn(phase, self._scenario.phase_boundaries()[index])

    # ------------------------------------------------------------------ #
    # Poisson-arrival churn within a phase
    # ------------------------------------------------------------------ #

    def _schedule_poisson_churn(self, phase: ScenarioPhase, phase_start: float) -> None:
        """Queue the phase's seeded join/failure arrivals.

        Arrival times are drawn up front from the dedicated churn streams, so
        the event sequence is a function of the seed and the scenario alone —
        identical across transports.  The event transport executes them as
        simulation-engine events at their arrival times (they can land in the
        middle of a message exchange, which is exactly the in-flight-loss
        case the transport must survive); the inline and batching transports,
        which have no clock, drain them at period boundaries.

        A forced replay schedule supersedes the Poisson streams entirely:
        nothing is drawn (the arrival *and* identity draws share the churn
        streams, so even sampling timings would desynchronise a replay).
        """
        if self._forced_churn is not None:
            return
        events: list[tuple[float, int, str]] = []
        for rate, priority, kind, rng in (
            (phase.join_rate, 0, "join", self._join_rng),
            (phase.fail_rate, 1, "fail", self._fail_rng),
        ):
            if rate <= 0.0:
                continue
            elapsed = rng.exponential(1.0 / rate)
            while elapsed < phase.duration:
                events.append((phase_start + elapsed, priority, kind))
                elapsed += rng.exponential(1.0 / rate)
        if not events:
            return
        events.sort()
        if self._engine is not None:
            for when, _priority, kind in events:
                self._engine.schedule_at(
                    max(self._engine.now, when),
                    lambda now, kind=kind: self._apply_churn_event(kind, now),
                    label=f"churn-{kind}",
                )
        else:
            self._pending_churn.extend(events)

    def _install_forced_churn(self) -> None:
        """Queue a replay schedule's recorded membership events (run start).

        The list index keeps simultaneous events in recorded order on both
        execution models: clock-less transports sort ``(when, index)`` pairs
        and the engine orders same-time events by schedule sequence.
        """
        if self._forced_churn is None or self._forced_churn_installed:
            return
        self._forced_churn_installed = True
        ordered = sorted(
            enumerate(self._forced_churn), key=lambda item: (item[1].when, item[0])
        )
        if self._engine is not None:
            for _index, event in ordered:
                self._engine.schedule_at(
                    max(self._engine.now, event.when),
                    lambda now, event=event: self._apply_churn_event(event, event.when),
                    label=f"churn-{event.kind}",
                )
        else:
            self._pending_churn.extend(
                (event.when, index, event) for index, event in ordered
            )

    def _drain_pending_churn(self, horizon: float) -> None:
        """Apply queued churn events that arrived at or before ``horizon``."""
        while self._pending_churn and self._pending_churn[0][0] <= horizon:
            when, _priority, kind = self._pending_churn.pop(0)
            self._apply_churn_event(kind, when)

    def _apply_churn_event(self, kind: str | ChurnEvent, when: float) -> None:
        """Execute one membership event at the next safe moment.

        A churn event delivered while a protocol exchange is in flight (or
        while another membership event is being handled) is deferred; it is
        applied as soon as the system is quiescent again, still within the
        same period's accounting.
        """
        if not self._churn_safe:
            self._deferred_churn.append((kind, when))
            return
        self._churn_safe = False
        try:
            self._execute_churn_event(kind, when)
            while self._deferred_churn:
                self._execute_churn_event(*self._deferred_churn.pop(0))
        finally:
            self._churn_safe = True

    def _drain_deferred_churn(self) -> None:
        """Apply membership events that arrived during an unsafe window.

        One _apply_churn_event call suffices: it executes the popped event
        and then consumes the rest of the queue itself.
        """
        if self._deferred_churn:
            self._apply_churn_event(*self._deferred_churn.pop(0))

    def _execute_churn_event(self, kind: str | ChurnEvent, when: float) -> None:
        """Execute one membership event (a server join or failure).

        ``kind`` is either a bare ``"join"``/``"fail"`` string — the live
        Poisson path, which draws the joining node's id or the victim from
        the churn streams — or a recorded :class:`ChurnEvent`, the replay
        path, which executes the pinned identity verbatim and never touches
        an RNG.  A forced event whose precondition no longer holds (node id
        taken, victim already gone, last server of its shard) is skipped
        deterministically: a shrunk schedule stays replayable even when
        earlier events it depended on were removed.
        """
        if isinstance(kind, ChurnEvent):
            event = kind
            if event.kind == "join":
                if (
                    event.node_id is None
                    or event.server in self._system.server_names()
                    or event.node_id in set(self._system.router.node_ids())
                ):
                    return
                handed_off = self._system.handle_server_join(
                    event.server, node_id=event.node_id
                )
                self._period_joins += 1
                self._period_reassigned += len(handed_off)
            else:
                names = self._system.server_names()
                if (
                    event.server not in names
                    or len(names) <= 1
                    or not self._system.can_remove_server(event.server)
                ):
                    return
                reassigned = self._system.handle_server_failure(event.server)
                self._period_failures += 1
                self._period_reassigned += len(reassigned)
        elif kind == "join":
            name = f"j{self._join_counter}"
            self._join_counter += 1
            bits = self._config.hash_bits
            taken = set(self._system.router.node_ids())
            node_id = self._join_rng.randbits(bits)
            while node_id in taken:
                node_id = self._join_rng.randbits(bits)
            handed_off = self._system.handle_server_join(name, node_id=node_id)
            self._period_joins += 1
            self._period_reassigned += len(handed_off)
            if self.record_churn:
                self.churn_log.append(
                    ChurnEvent(when=when, kind="join", server=name, node_id=node_id)
                )
        else:
            names = sorted(self._system.server_names())
            if len(names) <= 1:
                return
            victim = self._fail_rng.choice(names)
            if not self._system.can_remove_server(victim):
                # The drawn victim is the last server of its shard; failing
                # it would leave the shard's key range unowned.  Skip the
                # event (never reached on a single ring while >1 server is
                # alive, so the clock-less golden streams are unchanged).
                return
            reassigned = self._system.handle_server_failure(victim)
            self._period_failures += 1
            self._period_reassigned += len(reassigned)
            if self.record_churn:
                self.churn_log.append(
                    ChurnEvent(when=when, kind="fail", server=victim, node_id=None)
                )
        if self.verify_after_membership:
            self._system.verify_invariants()
        self._check_invariant_oracle()

    # ------------------------------------------------------------------ #
    # Partition rebalancing at period boundaries
    # ------------------------------------------------------------------ #

    def _maybe_rebalance(self, measure: LoadMeasure, when: float) -> None:
        """Recompute (or replay) the partition map at a period boundary.

        The live path derives target boundaries from the period workload's
        expected per-prefix load — a pure function of the scenario and the
        scale parameters, never of delivery order or membership history — so
        the rebalance sequence is identical across transports.  A replay
        schedule carrying recorded rebalances installs those maps verbatim
        instead, keeping shrunk schedules pinned to the exact failing
        partition history.
        """
        if self._system.shard_count <= 1:
            return
        if self._forced_rebalances is not None:
            while self._forced_rebalances and self._forced_rebalances[0].when <= when:
                event = self._forced_rebalances.pop(0)
                new_map = PartitionMap(
                    boundaries=event.boundaries,
                    key_bits=self._config.key_bits,
                    granularity_depth=self._config.initial_depth,
                    version=event.version,
                )
                self._apply_rebalance(new_map, event.when)
            return
        if not self._adaptive_partition:
            return
        loads = measure.rate_by_prefix(self._config.initial_depth)
        new_map = LoadProportionalPartition.from_loads(
            loads,
            key_bits=self._config.key_bits,
            shard_count=self._system.shard_count,
            previous=self._system.router.partition,
        )
        if new_map.boundaries == self._system.router.partition.boundaries:
            # Already on target: no migration, and — crucially — no version
            # bump, so a steady workload leaves the map untouched.
            return
        self._apply_rebalance(new_map, when)

    def _apply_rebalance(self, new_map: PartitionMap, when: float) -> None:
        """Install one partition map and migrate the groups it moves.

        Runs inside a churn-unsafe window: the migration handoffs pump the
        transport, and a membership event landing mid-transfer must defer to
        the next quiescent point exactly as during a balance pass.  Moved
        groups enter the protocol's touched/retired logs, so the incremental
        load assigner refreshes them like any churn handoff.
        """
        self._churn_safe = False
        try:
            migrated = self._system.rebalance_partition(new_map)
        finally:
            self._churn_safe = True
        self._drain_deferred_churn()
        self._period_migrated += len(migrated)
        if self.record_rebalances:
            self.rebalance_log.append(
                RebalanceEvent(
                    when=when,
                    version=new_map.version,
                    boundaries=new_map.boundaries,
                )
            )
        if self.verify_after_membership:
            self._system.verify_invariants()
        self._check_invariant_oracle()

    # ------------------------------------------------------------------ #
    # Protocol reaction within one period
    # ------------------------------------------------------------------ #

    def _balance(self, measure: LoadMeasure) -> tuple[int, int, float, float]:
        """Let CLASH react to the period's load.

        Returns ``(splits, merges, redirected_sources, migrated_queries)``.
        """
        if self._fixed_depth is not None:
            self._sync_assignments(measure)
            return 0, 0, 0.0, 0.0
        splits = 0
        merges = 0
        redirected = 0.0
        migrated_queries = 0.0
        for _iteration in range(self._params.max_balance_iterations):
            self._sync_assignments(measure)
            report = self._system.run_load_check(
                max_splits_per_server=self._params.max_splits_per_server_per_iteration
            )
            self._pending_dirty |= report.touched_groups
            self._pending_retired.extend(report.retired_assignments)
            # The load check has returned: the configuration is momentarily
            # quiescent, a legal point for the fuzz oracle.
            self._check_invariant_oracle()
            if report.split_count == 0 and report.merge_count == 0:
                break
            splits += report.split_count
            merges += report.merge_count
            for outcome in report.splits:
                if not outcome.shed:
                    continue
                probability = measure.group_probability(outcome.right)
                redirected += self._params.source_count * probability
                moved = measure.group_queries(outcome.right)
                migrated_queries += moved
                self._system.messages.add(MessageCategory.STATE_TRANSFER, moved)
            for outcome in report.merges:
                _left, right = outcome.parent_group.split()
                probability = measure.group_probability(right)
                redirected += self._params.source_count * probability
                moved = measure.group_queries(right)
                migrated_queries += moved
                self._system.messages.add(MessageCategory.STATE_TRANSFER, moved)
        # Leave the final, post-reaction load assignment in place for metrics.
        self._sync_assignments(measure)
        return splits, merges, redirected, migrated_queries

    # ------------------------------------------------------------------ #
    # Client traffic accounting
    # ------------------------------------------------------------------ #

    def _charge_lookups(self, spec: WorkloadSpec, period: float, redirected: float) -> None:
        """Charge the period's depth-discovery traffic.

        A sample of searches runs through the real message exchange; the
        remaining expected lookups are extrapolated at the sampled average
        cost.
        """
        key_changes = self._sources.expected_key_changes(period)
        query_arrivals = self._queries.expected_arrivals(period) if self._params.query_client_count else 0.0
        lookups_needed = key_changes + query_arrivals + redirected
        if lookups_needed <= 0:
            return
        self._lookup_keygen.set_base_weights(spec.weights)
        sample_size = min(self._params.lookup_sample_size, max(1, int(lookups_needed)))
        sampled_messages = 0
        for _ in range(sample_size):
            key = self._lookup_keygen.generate()
            result = self._lookup_client.find_group(key, use_cache=False)
            sampled_messages += result.messages
        average_cost = sampled_messages / sample_size
        remainder = max(0.0, lookups_needed - sample_size)
        self._system.messages.add(MessageCategory.LOOKUP, remainder * average_cost)
        # Application data packets are delivered directly to the cached server.
        self._system.messages.add(
            MessageCategory.DATA, self._sources.total_rate() * period
        )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self) -> SimulationResult:
        """Run the full scenario and return the collected metrics.

        The transport is closed deterministically when the run ends —
        success or failure — so event loops and worker processes never
        outlive the simulation waiting for garbage collection (callers may
        still close again; :meth:`~repro.net.transport.Transport.close` is
        idempotent).
        """
        try:
            return self._run_scenario()
        finally:
            self._transport.close()

    def _run_scenario(self) -> SimulationResult:
        period = self._config.load_check_period
        duration = self._scenario.total_duration
        self._install_forced_churn()
        time = 0.0
        while time < duration:
            period_end = min(time + period, duration)
            # Counters reset before churn so that failure-recovery traffic
            # (ACCEPT_KEYGROUP re-issues) is charged to the period it happens
            # in rather than silently discarded.
            self._system.reset_messages()
            self._enter_phase(self._scenario.phase_index_at(time))
            # Clock-less transports drain the period's Poisson churn here;
            # the event transport executes it as engine events instead.
            if self._engine is None:
                self._drain_pending_churn(period_end)
            spec = self._scenario.workload_at(time)
            self._sources.switch_workload(spec)
            self._queries.switch_workload(spec)
            measure = self._build_measure(spec)
            # Rebalance first, so the period's balance pass and metrics see
            # the partition the period runs under.
            self._maybe_rebalance(measure, time)
            # The period's protocol traffic pumps the event kernel; churn
            # events landing mid-exchange are deferred until it completes.
            self._churn_safe = False
            try:
                splits, merges, redirected, _migrated = self._balance(measure)
                self._total_splits += splits
                self._total_merges += merges
                self._charge_lookups(spec, period_end - time, redirected)
            finally:
                self._churn_safe = True
            self._drain_deferred_churn()
            if self._engine is not None:
                # Message exchanges advanced the event clock within the
                # period; aligning the kernel with the period boundary here
                # (before the sample is built) both stamps the next period's
                # traffic consistently and fires the period's remaining churn
                # events, so membership counters land in the sample of the
                # period the events belong to.
                self._engine.run_until(max(self._engine.now, period_end))
            loads = self._server_load_percents()
            min_depth, avg_depth, max_depth = self._system.depth_statistics()
            signalling = self._system.messages.signalling_total()
            breakdown = {
                category: count / (period_end - time)
                for category, count in self._system.messages.snapshot().items()
                if category != MessageCategory.DATA.value
            }
            latency_samples = self._transport.drain_latency_samples()
            dropped_total = self._transport.dropped_messages
            dropped = dropped_total - self._dropped_seen
            self._dropped_seen = dropped_total
            if self._system.shard_count > 1:
                shard_peaks, shard_imbalance = self._shard_load_stats()
            else:
                shard_peaks, shard_imbalance = (), 0.0
            sample = PeriodSample(
                time=period_end,
                workload=spec.name,
                max_load_percent=max(loads) if loads else 0.0,
                avg_load_percent=(sum(loads) / len(loads)) if loads else 0.0,
                active_servers=len(loads),
                min_depth=float(min_depth),
                avg_depth=float(avg_depth),
                max_depth=float(max_depth),
                splits=splits,
                merges=merges,
                # Per *live* server: churn shrinks the deployment, and the
                # Figure 5 metric should reflect the servers actually present.
                messages_per_server_per_second=signalling
                / (period_end - time)
                / max(1, len(self._system.server_names())),
                message_breakdown=breakdown,
                mean_message_latency=mean(latency_samples) if latency_samples else 0.0,
                server_joins=self._period_joins,
                server_failures=self._period_failures,
                groups_reassigned=self._period_reassigned,
                dropped_messages=dropped,
                shard_count=self._system.shard_count,
                shard_peak_loads=shard_peaks,
                cross_shard_imbalance=shard_imbalance,
                groups_migrated=self._period_migrated,
                partition_version=self._system.partition_version,
            )
            self._period_joins = 0
            self._period_failures = 0
            self._period_reassigned = 0
            self._period_migrated = 0
            self._recorder.record(sample)
            # Period boundary: the canonical quiescent point.  The knob runs
            # the full invariant pass; installed fuzz oracles additionally
            # see the system and the freshly built sample.
            if self._params.verify_invariants:
                self._system.verify_invariants()
            self._check_invariant_oracle()
            if self._sample_oracle is not None:
                self._sample_oracle(self._system, sample)
            time = period_end
        return SimulationResult(
            label=self.label,
            params=self._params,
            config=self._config,
            metrics=self._recorder,
            final_active_groups=len(self._system.active_groups()),
            total_splits=self._total_splits,
            total_merges=self._total_merges,
            # Routing-tier and balance-pass telemetry rides along as notes:
            # diff() ignores them, so the incremental and full-rebuild paths
            # stay formally bit-identical while their work counters remain
            # comparable.
            notes={
                key: float(value)
                for key, value in {
                    **self._system.dht_stats(),
                    **self._system.work_stats(),
                }.items()
            },
        )
