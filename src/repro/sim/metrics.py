"""Metrics collection for the paper's evaluation figures.

Each LOAD_CHECK_PERIOD the simulator records one :class:`PeriodSample`; the
:class:`MetricsRecorder` aggregates them into the time series Figure 4 plots
(maximum and average server load, active server count, tree depth evolution)
and the per-phase summaries Figures 4 (bottom-right) and 5 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.util.stats import TimeSeries, mean
from repro.workload.scenario import PhasedScenario

__all__ = ["PeriodSample", "PhaseSummary", "MetricsRecorder", "diff_sample_streams"]


@dataclass(frozen=True)
class PeriodSample:
    """Everything measured at the end of one LOAD_CHECK_PERIOD.

    Attributes:
        time: Simulation time at the end of the period (seconds).
        workload: Name of the workload phase active during the period.
        max_load_percent: Highest per-server load, as % of capacity.
        avg_load_percent: Mean load over *active* servers, as % of capacity.
        active_servers: Number of servers managing at least one key group
            with non-zero load.
        min_depth, avg_depth, max_depth: Depth statistics of the active key
            groups (CLASH only; fixed-depth baselines report their constant).
        splits, merges: Number of splits / consolidations performed during
            the period.
        messages_per_server_per_second: CLASH signalling messages per server
            per second (the Figure 5 metric).
        message_breakdown: Signalling messages by category (per second, whole
            system).
        mean_message_latency: Mean simulated per-message (one-way) delivery
            latency over the period in seconds (0 unless the active transport
            models time).
        server_joins: Servers that joined the deployment during the period
            (Poisson churn).
        server_failures: Servers that failed during the period (phase-entry
            ``fail_servers`` bursts and Poisson churn alike).
        groups_reassigned: Key groups handed to a new owner by the period's
            membership events.
        dropped_messages: One-way envelopes the transport dropped during the
            period because their destination failed while they were in
            flight.
        shard_count: Number of ring shards the deployment routes across
            (1 for the paper's single global ring).
        shard_peak_loads: Per-shard peak server load (% of capacity), in
            shard order; empty for single-ring runs.
        cross_shard_imbalance: Peak-to-mean ratio of the per-shard aggregate
            loads — 1.0 means the shards carry identical totals, k means the
            hottest shard carries k× the average.  0.0 for single-ring runs
            and for periods with no load.
        groups_migrated: Key groups moved between shards by partition
            rebalances during the period (0 with the static partition).
        partition_version: Version of the partition map in force at the end
            of the period (0 for single-ring runs and the static partition).
    """

    time: float
    workload: str
    max_load_percent: float
    avg_load_percent: float
    active_servers: int
    min_depth: float
    avg_depth: float
    max_depth: float
    splits: int
    merges: int
    messages_per_server_per_second: float
    message_breakdown: dict[str, float] = field(default_factory=dict)
    mean_message_latency: float = 0.0
    server_joins: int = 0
    server_failures: int = 0
    groups_reassigned: int = 0
    dropped_messages: int = 0
    shard_count: int = 1
    shard_peak_loads: tuple[float, ...] = ()
    cross_shard_imbalance: float = 0.0
    groups_migrated: int = 0
    partition_version: int = 0


@dataclass(frozen=True)
class PhaseSummary:
    """Per-workload-phase aggregates (Figure 4 bottom-right, Figure 5 bars).

    Attributes:
        workload: Workload name ("A", "B" or "C").
        periods: Number of measurement periods in the phase.
        mean_max_load_percent: Mean (over periods) of the per-period maximum
            server load.
        peak_max_load_percent: Largest per-period maximum observed.
        mean_avg_load_percent: Mean of the per-period average loads.
        mean_active_servers: Mean number of active servers.
        mean_depth: Mean of the per-period average depths.
        depth_spread: Mean (max depth − min depth), a measure of how
            unbalanced the splitting tree is.
        messages_per_server_per_second: Mean signalling message rate.
        total_splits, total_merges: Splits / merges summed over the phase.
    """

    workload: str
    periods: int
    mean_max_load_percent: float
    peak_max_load_percent: float
    mean_avg_load_percent: float
    mean_active_servers: float
    mean_depth: float
    depth_spread: float
    messages_per_server_per_second: float
    total_splits: int
    total_merges: int


class MetricsRecorder:
    """Collects per-period samples and produces series / phase summaries."""

    def __init__(self) -> None:
        self._samples: list[PeriodSample] = []

    def record(self, sample: PeriodSample) -> None:
        """Append one period's measurements."""
        if self._samples and sample.time < self._samples[-1].time:
            raise ValueError(
                f"sample time {sample.time} precedes the last recorded time "
                f"{self._samples[-1].time}"
            )
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[PeriodSample]:
        """All recorded samples in time order."""
        return list(self._samples)

    # ------------------------------------------------------------------ #
    # Time series (Figure 4 curves)
    # ------------------------------------------------------------------ #

    def series(self, attribute: str) -> TimeSeries:
        """A named attribute of every sample as a :class:`TimeSeries`.

        ``attribute`` must be one of :class:`PeriodSample`'s numeric fields,
        e.g. ``"max_load_percent"`` or ``"active_servers"``.
        """
        series = TimeSeries(name=attribute)
        for sample in self._samples:
            value = getattr(sample, attribute)
            series.append(sample.time, float(value))
        return series

    def depth_series(self) -> dict[str, TimeSeries]:
        """The three depth curves of Figure 4 (min, average, max)."""
        return {
            "min": self.series("min_depth"),
            "avg": self.series("avg_depth"),
            "max": self.series("max_depth"),
        }

    # ------------------------------------------------------------------ #
    # Phase summaries (Figure 4 bottom-right, Figure 5)
    # ------------------------------------------------------------------ #

    def phase_summaries(self, scenario: PhasedScenario | None = None) -> list[PhaseSummary]:
        """Aggregate the samples by workload phase.

        The phase label stored on each sample is used for grouping; the
        ``scenario`` argument is accepted for interface symmetry but is not
        required.
        """
        del scenario  # grouping is by the recorded workload label
        summaries: list[PhaseSummary] = []
        seen: list[str] = []
        for sample in self._samples:
            if sample.workload not in seen:
                seen.append(sample.workload)
        for workload in seen:
            phase_samples = [s for s in self._samples if s.workload == workload]
            summaries.append(
                PhaseSummary(
                    workload=workload,
                    periods=len(phase_samples),
                    mean_max_load_percent=mean([s.max_load_percent for s in phase_samples]),
                    peak_max_load_percent=max(s.max_load_percent for s in phase_samples),
                    mean_avg_load_percent=mean([s.avg_load_percent for s in phase_samples]),
                    mean_active_servers=mean([float(s.active_servers) for s in phase_samples]),
                    mean_depth=mean([s.avg_depth for s in phase_samples]),
                    depth_spread=mean([s.max_depth - s.min_depth for s in phase_samples]),
                    messages_per_server_per_second=mean(
                        [s.messages_per_server_per_second for s in phase_samples]
                    ),
                    total_splits=sum(s.splits for s in phase_samples),
                    total_merges=sum(s.merges for s in phase_samples),
                )
            )
        return summaries

    def overall_peak_load(self) -> float:
        """The highest per-server load seen at any point in the run."""
        if not self._samples:
            raise ValueError("no samples recorded")
        return max(sample.max_load_percent for sample in self._samples)

    def steady_state_samples(self, skip: int = 2) -> list[PeriodSample]:
        """Samples with the first ``skip`` periods of each phase removed.

        The paper notes a "small transient period" after each workload switch;
        dropping the first couple of periods per phase gives the steady-state
        view used in EXPERIMENTS.md comparisons.
        """
        if skip < 0:
            raise ValueError(f"skip must be non-negative, got {skip}")
        result: list[PeriodSample] = []
        current_phase: str | None = None
        phase_count = 0
        for sample in self._samples:
            if sample.workload != current_phase:
                current_phase = sample.workload
                phase_count = 0
            if phase_count >= skip:
                result.append(sample)
            phase_count += 1
        return result


def diff_sample_streams(
    samples: list[PeriodSample], reference: list[PeriodSample]
) -> list[str]:
    """Field-level differences between two ``PeriodSample`` streams.

    The formal statement of transport/engine equivalence: two runs are
    *bit-identical* exactly when this returns an empty list.  Comparison is
    plain dataclass equality — every field, floats included, with no
    tolerance — and each difference is described down to the period index and
    field name so an equivalence failure reads as a diagnosis, not an opaque
    dataclass inequality.  :meth:`repro.sim.simulator.SimulationResult.diff`
    wraps this together with the run totals; the golden test harness
    (``tests/net/equivalence.py``) and ``benchmarks/bench_async.py`` assert
    through that.
    """
    differences: list[str] = []
    if len(samples) != len(reference):
        differences.append(
            f"stream lengths differ: {len(samples)} samples vs "
            f"{len(reference)} reference samples"
        )
    for index, (sample, expected) in enumerate(zip(samples, reference)):
        if sample == expected:
            continue
        for spec in fields(sample):
            observed, wanted = getattr(sample, spec.name), getattr(expected, spec.name)
            if observed != wanted:
                differences.append(
                    f"period {index}: {spec.name} = {observed!r}, expected {wanted!r}"
                )
    return differences
