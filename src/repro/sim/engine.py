"""A minimal discrete-event simulation engine.

Used by the examples and the fine-grained integration tests to drive small
CLASH deployments packet by packet.  The engine is a conventional
priority-queue scheduler: events carry an absolute firing time and a callback;
callbacks may schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.util.validation import check_non_negative

__all__ = ["ScheduledEvent", "SimulationEngine"]


@dataclass(order=True, frozen=True, slots=True)
class ScheduledEvent:
    """An event in the simulation calendar.

    Ordering is by ``(time, sequence)`` so that simultaneous events fire in
    the order they were scheduled (deterministic replay).
    """

    time: float
    sequence: int
    callback: Callable[[float], None] = field(compare=False)
    label: str = field(compare=False, default="")


class SimulationEngine:
    """A deterministic event-driven simulation clock."""

    def __init__(self) -> None:
        self._queue: list[ScheduledEvent] = []
        self._now = 0.0
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def peek_time(self) -> float | None:
        """Firing time of the earliest pending event (``None`` when idle)."""
        if not self._queue:
            return None
        return self._queue[0].time

    def schedule_at(
        self, time: float, callback: Callable[[float], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule a callback at an absolute time (must not be in the past)."""
        check_non_negative("time", time)
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time}, the clock is already at {self._now}"
            )
        event = ScheduledEvent(
            time=time, sequence=next(self._counter), callback=callback, label=label
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[float], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule a callback ``delay`` seconds from the current time."""
        check_non_negative("delay", delay)
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_every(
        self,
        period: float,
        callback: Callable[[float], None],
        label: str = "",
        first_at: float | None = None,
    ) -> None:
        """Schedule a callback to repeat every ``period`` seconds indefinitely.

        The repetition stops automatically when the engine is run with a
        horizon (events beyond the horizon never fire).

        Tick ``k`` fires at exactly ``first_at + k * period``: re-scheduling
        at ``now + period`` would accumulate float rounding across ticks, so
        periodic load checks would slowly drift away from phase boundaries
        over a 6-hour run.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        start = first_at if first_at is not None else self._now + period
        ticks = itertools.count(1)

        def fire(now: float) -> None:
            callback(now)
            self.schedule_at(start + next(ticks) * period, fire, label)

        self.schedule_at(start, fire, label)

    def run_until(self, horizon: float, max_events: int | None = None) -> int:
        """Fire events in time order until the horizon (inclusive) is reached.

        Returns the number of events processed during this call.  Events
        scheduled beyond the horizon remain queued.
        """
        if horizon < self._now:
            raise ValueError(
                f"horizon {horizon} is before the current time {self._now}"
            )
        fired = 0
        while self._queue and self._queue[0].time <= horizon:
            if max_events is not None and fired >= max_events:
                break
            event = heapq.heappop(self._queue)
            self._now = event.time
            event.callback(event.time)
            fired += 1
            self._processed += 1
        if not self._queue or self._queue[0].time > horizon:
            self._now = max(self._now, horizon)
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Fire every queued event (bounded by ``max_events`` as a safety net)."""
        fired = 0
        while self._queue and fired < max_events:
            event = heapq.heappop(self._queue)
            self._now = event.time
            event.callback(event.time)
            fired += 1
            self._processed += 1
        return fired
