"""Simulation engines and metrics for the CLASH evaluation.

Two complementary simulators are provided:

* :class:`~repro.sim.engine.SimulationEngine` — a classic event-driven
  (heap-based) engine used by the examples and the fine-grained integration
  tests, where individual packets, lookups and splits are explicit events.
* :class:`~repro.sim.simulator.FlowSimulator` — a flow-level simulator that
  advances in LOAD_CHECK_PERIOD steps and assigns expected per-group loads
  analytically.  This is the engine behind the paper-scale experiments
  (Figures 4 and 5): CLASH's decisions happen at exactly this granularity, so
  the protocol code paths exercised are identical while a 6-hour, 1000-server,
  100,000-client run stays tractable in Python (see DESIGN.md §2).

:class:`~repro.sim.metrics.MetricsRecorder` collects the per-period series
both figures plot (max/average server load, active servers, tree depth,
message rates).
"""

from repro.sim.engine import ScheduledEvent, SimulationEngine
from repro.sim.loadmeasure import LoadMeasure
from repro.sim.metrics import MetricsRecorder, PeriodSample, PhaseSummary
from repro.sim.simulator import FlowSimulator, SimulationParams, SimulationResult

__all__ = [
    "SimulationEngine",
    "ScheduledEvent",
    "LoadMeasure",
    "MetricsRecorder",
    "PeriodSample",
    "PhaseSummary",
    "FlowSimulator",
    "SimulationParams",
    "SimulationResult",
]
