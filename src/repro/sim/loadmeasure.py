"""Analytic load measure: expected per-key-group traffic and query counts.

The flow-level simulator does not materialise 100,000 individual data sources.
Because the workload model draws the skewed base bits independently of the
uniformly random remainder bits, the *expected* rate directed at any key group
is simply ``total_rate × P(group)`` where ``P(group)`` is the workload's
prefix probability.  The same holds for the expected number of stored queries.
Using expectations at LOAD_CHECK_PERIOD granularity reproduces the load values
the paper's servers compute (they too aggregate over the measurement interval)
while keeping a 6-hour, 1000-server run tractable (see DESIGN.md §2).
"""

from __future__ import annotations

import weakref
from typing import Iterable

from repro.keys.keygroup import KeyGroup
from repro.util.validation import check_non_negative
from repro.workload.distributions import WorkloadSpec

__all__ = ["LoadMeasure", "shared_prefix_cache", "shared_base_probabilities"]

_PREFIX_CACHES: "weakref.WeakKeyDictionary[WorkloadSpec, dict[tuple[int, int], float]]" = (
    weakref.WeakKeyDictionary()
)

_BASE_PROBABILITIES: "weakref.WeakKeyDictionary[WorkloadSpec, tuple[float, ...]]" = (
    weakref.WeakKeyDictionary()
)


def shared_prefix_cache(spec: WorkloadSpec) -> dict[tuple[int, int], float]:
    """The (prefix, depth) → probability cache shared by all measures of ``spec``.

    A workload's prefix probabilities depend only on the spec, so a
    fixed-depth baseline and a CLASH run over the same workload (or several
    measures across scenario phases) warm one cache instead of one each.  The
    registry is weakly keyed: the cache lives exactly as long as an equal
    spec does.
    """
    cache = _PREFIX_CACHES.get(spec)
    if cache is None:
        cache = {}
        _PREFIX_CACHES[spec] = cache
    return cache


def shared_base_probabilities(spec: WorkloadSpec) -> tuple[float, ...]:
    """Every base value's probability, computed once per spec.

    Entry ``bv`` is exactly ``spec.probability(bv)`` — the same
    ``weights[bv] / total_weight`` division on the same operands, so the
    shared table is bit-identical to the scalar calls it replaces.  Every
    prefix deeper than ``base_bits`` derives its probability from one of
    these entries; sharing the table is what makes the batched assignment a
    single division per group instead of a weight-slice sum.
    """
    base = _BASE_PROBABILITIES.get(spec)
    if base is None:
        total = spec.total_weight
        base = tuple(weight / total for weight in spec.weights)
        _BASE_PROBABILITIES[spec] = base
    return base


class LoadMeasure:
    """Expected traffic and query mass per key group under a workload.

    Args:
        spec: The active workload (skew + per-source rate).
        total_rate: Aggregate packet rate of all sources (packets/second).
        total_queries: Steady-state number of stored queries in the system.
    """

    def __init__(
        self, spec: WorkloadSpec, total_rate: float, total_queries: float = 0.0
    ) -> None:
        check_non_negative("total_rate", total_rate)
        check_non_negative("total_queries", total_queries)
        self._spec = spec
        self._total_rate = total_rate
        self._total_queries = total_queries
        # (prefix, depth) → probability.  Period assignment asks for the same
        # expectations every load check of a phase; the workload is immutable,
        # so the answers never change and the weight-slice sums dominate the
        # assignment loop without this cache.  The cache is shared per spec —
        # see shared_prefix_cache().
        self._prefix_probability_cache = shared_prefix_cache(spec)
        self._base_probabilities = shared_base_probabilities(spec)

    @property
    def spec(self) -> WorkloadSpec:
        """The workload specification the measure is built from."""
        return self._spec

    @property
    def total_rate(self) -> float:
        """Aggregate packet rate across all sources (packets/second)."""
        return self._total_rate

    @property
    def total_queries(self) -> float:
        """Steady-state number of stored queries."""
        return self._total_queries

    def group_probability(self, group: KeyGroup) -> float:
        """Probability that a freshly drawn key falls in ``group`` (memoized)."""
        cache_key = (group.prefix, group.depth)
        probability = self._prefix_probability_cache.get(cache_key)
        if probability is None:
            probability = self._spec.prefix_probability(group.prefix, group.depth)
            self._prefix_probability_cache[cache_key] = probability
        return probability

    def group_rate(self, group: KeyGroup) -> float:
        """Expected packet rate directed at ``group`` (packets/second)."""
        return self._total_rate * self.group_probability(group)

    def group_queries(self, group: KeyGroup) -> float:
        """Expected number of stored queries whose keys fall in ``group``."""
        return self._total_queries * self.group_probability(group)

    def assignment(self, group: KeyGroup) -> tuple[float, float]:
        """``(expected rate, expected queries)`` with one probability lookup."""
        probability = self.group_probability(group)
        return self._total_rate * probability, self._total_queries * probability

    def _ensure_probabilities(self, pairs: Iterable[tuple[int, int]]) -> None:
        """Batch-fill the shared prefix cache for every missing (prefix, depth).

        Trie-style sharing: prefixes deeper than ``base_bits`` all derive
        from the per-spec base-probability table (one shared division per
        base value, then one division per prefix), and sibling prefixes at
        one depth share the ``1 << excess`` scale.  Each individual float
        operation — the base division, the excess division, the weight-slice
        sum for shallow prefixes — is the same operation on the same operands
        as the scalar :meth:`WorkloadSpec.prefix_probability` path, in the
        same order, so the batched results are bit-identical (the loadmeasure
        test suite asserts exact equality).
        """
        cache = self._prefix_probability_cache
        spec = self._spec
        base_bits = spec.base_bits
        weights = spec.weights
        total = spec.total_weight
        base = self._base_probabilities
        by_depth: dict[int, list[int]] = {}
        for prefix, depth in pairs:
            if (prefix, depth) not in cache:
                by_depth.setdefault(depth, []).append(prefix)
        for depth, prefixes in by_depth.items():
            if depth < 0:
                raise ValueError(f"depth must be non-negative, got {depth}")
            if depth <= base_bits:
                # Shallow prefixes aggregate weight slices.  The sums stay
                # sequential left-to-right — summing children and combining
                # would reorder the additions and change the low bits.
                shift = base_bits - depth
                for prefix in prefixes:
                    start = prefix << shift
                    cache[(prefix, depth)] = sum(weights[start : (prefix + 1) << shift]) / total
            else:
                excess = depth - base_bits
                scale = 1 << excess
                for prefix in prefixes:
                    cache[(prefix, depth)] = base[prefix >> excess] / scale

    def assign_rates(
        self, groups: Iterable[KeyGroup]
    ) -> dict[KeyGroup, tuple[float, float]]:
        """Bulk assignment: ``{group: (rate, queries)}`` in a single pass.

        Missing probabilities are computed through the batched trie path
        (:meth:`_ensure_probabilities`) — one shared base-probability table
        and one division per group — instead of a weight-slice sum each, then
        every group's expectations come from the shared prefix cache.
        """
        materialised = list(groups)
        self._ensure_probabilities((group.prefix, group.depth) for group in materialised)
        cache = self._prefix_probability_cache
        total_rate = self._total_rate
        total_queries = self._total_queries
        assignments: dict[KeyGroup, tuple[float, float]] = {}
        for group in materialised:
            probability = cache[(group.prefix, group.depth)]
            assignments[group] = (total_rate * probability, total_queries * probability)
        return assignments

    def rate_by_prefix(self, depth: int) -> list[float]:
        """Expected rate for every prefix of the given depth (Figure 3 helper)."""
        if depth < 0:
            raise ValueError(f"depth must be non-negative, got {depth}")
        self._ensure_probabilities((prefix, depth) for prefix in range(1 << depth))
        cache = self._prefix_probability_cache
        return [
            self._total_rate * cache[(prefix, depth)] for prefix in range(1 << depth)
        ]
