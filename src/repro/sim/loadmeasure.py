"""Analytic load measure: expected per-key-group traffic and query counts.

The flow-level simulator does not materialise 100,000 individual data sources.
Because the workload model draws the skewed base bits independently of the
uniformly random remainder bits, the *expected* rate directed at any key group
is simply ``total_rate × P(group)`` where ``P(group)`` is the workload's
prefix probability.  The same holds for the expected number of stored queries.
Using expectations at LOAD_CHECK_PERIOD granularity reproduces the load values
the paper's servers compute (they too aggregate over the measurement interval)
while keeping a 6-hour, 1000-server run tractable (see DESIGN.md §2).
"""

from __future__ import annotations

import weakref
from typing import Iterable

from repro.keys.keygroup import KeyGroup
from repro.util.validation import check_non_negative
from repro.workload.distributions import WorkloadSpec

__all__ = ["LoadMeasure", "shared_prefix_cache"]

_PREFIX_CACHES: "weakref.WeakKeyDictionary[WorkloadSpec, dict[tuple[int, int], float]]" = (
    weakref.WeakKeyDictionary()
)


def shared_prefix_cache(spec: WorkloadSpec) -> dict[tuple[int, int], float]:
    """The (prefix, depth) → probability cache shared by all measures of ``spec``.

    A workload's prefix probabilities depend only on the spec, so a
    fixed-depth baseline and a CLASH run over the same workload (or several
    measures across scenario phases) warm one cache instead of one each.  The
    registry is weakly keyed: the cache lives exactly as long as an equal
    spec does.
    """
    cache = _PREFIX_CACHES.get(spec)
    if cache is None:
        cache = {}
        _PREFIX_CACHES[spec] = cache
    return cache


class LoadMeasure:
    """Expected traffic and query mass per key group under a workload.

    Args:
        spec: The active workload (skew + per-source rate).
        total_rate: Aggregate packet rate of all sources (packets/second).
        total_queries: Steady-state number of stored queries in the system.
    """

    def __init__(
        self, spec: WorkloadSpec, total_rate: float, total_queries: float = 0.0
    ) -> None:
        check_non_negative("total_rate", total_rate)
        check_non_negative("total_queries", total_queries)
        self._spec = spec
        self._total_rate = total_rate
        self._total_queries = total_queries
        # (prefix, depth) → probability.  Period assignment asks for the same
        # expectations every load check of a phase; the workload is immutable,
        # so the answers never change and the weight-slice sums dominate the
        # assignment loop without this cache.  The cache is shared per spec —
        # see shared_prefix_cache().
        self._prefix_probability_cache = shared_prefix_cache(spec)

    @property
    def spec(self) -> WorkloadSpec:
        """The workload specification the measure is built from."""
        return self._spec

    @property
    def total_rate(self) -> float:
        """Aggregate packet rate across all sources (packets/second)."""
        return self._total_rate

    @property
    def total_queries(self) -> float:
        """Steady-state number of stored queries."""
        return self._total_queries

    def group_probability(self, group: KeyGroup) -> float:
        """Probability that a freshly drawn key falls in ``group`` (memoized)."""
        cache_key = (group.prefix, group.depth)
        probability = self._prefix_probability_cache.get(cache_key)
        if probability is None:
            probability = self._spec.prefix_probability(group.prefix, group.depth)
            self._prefix_probability_cache[cache_key] = probability
        return probability

    def group_rate(self, group: KeyGroup) -> float:
        """Expected packet rate directed at ``group`` (packets/second)."""
        return self._total_rate * self.group_probability(group)

    def group_queries(self, group: KeyGroup) -> float:
        """Expected number of stored queries whose keys fall in ``group``."""
        return self._total_queries * self.group_probability(group)

    def assignment(self, group: KeyGroup) -> tuple[float, float]:
        """``(expected rate, expected queries)`` with one probability lookup."""
        probability = self.group_probability(group)
        return self._total_rate * probability, self._total_queries * probability

    def assign_rates(
        self, groups: Iterable[KeyGroup]
    ) -> dict[KeyGroup, tuple[float, float]]:
        """Bulk assignment: ``{group: (rate, queries)}`` in a single pass.

        One probability fetch per group (against the shared prefix cache)
        replaces the two separate ``group_rate``/``group_queries`` lookups the
        per-group API costs.
        """
        group_probability = self.group_probability
        total_rate = self._total_rate
        total_queries = self._total_queries
        assignments: dict[KeyGroup, tuple[float, float]] = {}
        for group in groups:
            probability = group_probability(group)
            assignments[group] = (total_rate * probability, total_queries * probability)
        return assignments

    def rate_by_prefix(self, depth: int) -> list[float]:
        """Expected rate for every prefix of the given depth (Figure 3 helper)."""
        if depth < 0:
            raise ValueError(f"depth must be non-negative, got {depth}")
        return [
            self._total_rate * self._spec.prefix_probability(prefix, depth)
            for prefix in range(1 << depth)
        ]
