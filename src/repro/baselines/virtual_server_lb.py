"""Virtual-server migration load balancing (Rao et al., IPTPS '03).

The scheme reuses Chord's virtual servers: each physical node hosts several
virtual ring nodes, and load attaches to virtual servers.  When a physical
node exceeds a load threshold it transfers its *heaviest movable* virtual
server to an under-loaded physical node.  Unlike CLASH the unit of transfer is
a whole virtual server's arc of the hash space — the scheme can equalise
aggregate load but cannot sub-divide a single hot key region, and it destroys
no less content locality than the base DHT already did (objects remain
scattered at full hash granularity).

This implementation operates on a load snapshot (a mapping from virtual server
to load) and iterates migrations until no physical node is overloaded or no
productive move remains; it is used by the A2 ablation benchmark to contrast
against CLASH on the same skewed workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_in_range, check_positive, check_type

__all__ = ["VirtualServerBalancer", "MigrationStep"]


@dataclass(frozen=True)
class MigrationStep:
    """One virtual-server migration.

    Attributes:
        virtual_server: Name of the migrated virtual server.
        source: Physical node it moved from.
        destination: Physical node it moved to.
        load: The load carried along with it.
    """

    virtual_server: str
    source: str
    destination: str
    load: float


@dataclass
class _PhysicalNode:
    name: str
    capacity: float
    virtuals: dict[str, float] = field(default_factory=dict)

    @property
    def load(self) -> float:
        return sum(self.virtuals.values())

    @property
    def utilisation(self) -> float:
        return self.load / self.capacity


class VirtualServerBalancer:
    """Iteratively migrate virtual servers from hot to cold physical nodes.

    Args:
        capacity: Per-physical-node capacity in load units.
        overload_threshold: Utilisation above which a node sheds virtual servers.
        underload_threshold: Utilisation below which a node accepts them.
    """

    def __init__(
        self,
        capacity: float,
        overload_threshold: float = 0.9,
        underload_threshold: float = 0.54,
    ) -> None:
        check_positive("capacity", capacity)
        check_in_range("overload_threshold", overload_threshold, 0.0, 10.0)
        check_in_range("underload_threshold", underload_threshold, 0.0, 10.0)
        if underload_threshold >= overload_threshold:
            raise ValueError(
                "underload_threshold must be below overload_threshold, got "
                f"{underload_threshold} >= {overload_threshold}"
            )
        self._capacity = capacity
        self._overload = overload_threshold
        self._underload = underload_threshold
        self._nodes: dict[str, _PhysicalNode] = {}

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def add_physical_node(self, name: str, capacity: float | None = None) -> None:
        """Register a physical node (capacity defaults to the balancer's)."""
        check_type("name", name, str)
        if not name:
            raise ValueError("physical node name must be non-empty")
        if name in self._nodes:
            raise ValueError(f"physical node {name!r} already exists")
        self._nodes[name] = _PhysicalNode(
            name=name, capacity=capacity if capacity is not None else self._capacity
        )

    def assign_virtual_server(self, physical: str, virtual: str, load: float) -> None:
        """Attach a virtual server with the given load to a physical node."""
        if physical not in self._nodes:
            raise KeyError(f"unknown physical node {physical!r}")
        if load < 0:
            raise ValueError(f"load must be non-negative, got {load}")
        for node in self._nodes.values():
            if virtual in node.virtuals:
                raise ValueError(f"virtual server {virtual!r} is already assigned")
        self._nodes[physical].virtuals[virtual] = load

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def node_loads(self) -> dict[str, float]:
        """Current load of every physical node."""
        return {name: node.load for name, node in self._nodes.items()}

    def node_utilisations(self) -> dict[str, float]:
        """Current utilisation (load / capacity) of every physical node."""
        return {name: node.utilisation for name, node in self._nodes.items()}

    def max_utilisation(self) -> float:
        """Highest physical-node utilisation."""
        if not self._nodes:
            raise ValueError("no physical nodes registered")
        return max(node.utilisation for node in self._nodes.values())

    def overloaded_nodes(self) -> list[str]:
        """Physical nodes above the overload threshold, hottest first."""
        return sorted(
            (name for name, node in self._nodes.items() if node.utilisation > self._overload),
            key=lambda name: -self._nodes[name].utilisation,
        )

    # ------------------------------------------------------------------ #
    # Balancing
    # ------------------------------------------------------------------ #

    def _best_destination(self, load: float, exclude: str) -> str | None:
        """The least-loaded node that can absorb ``load`` without overloading."""
        candidates = [
            node
            for name, node in self._nodes.items()
            if name != exclude and (node.load + load) / node.capacity <= self._overload
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda node: (node.utilisation, node.name)).name

    def balance(self, max_migrations: int = 10_000) -> list[MigrationStep]:
        """Migrate virtual servers until no node is overloaded (or no move helps).

        The heaviest *movable* virtual server of the hottest node is moved
        first — moving the single hottest virtual server is pointless when it
        alone exceeds a whole node's threshold, which is precisely the
        limitation CLASH's sub-group splitting removes.
        """
        check_positive("max_migrations", max_migrations)
        steps: list[MigrationStep] = []
        while len(steps) < max_migrations:
            overloaded = self.overloaded_nodes()
            if not overloaded:
                break
            progressed = False
            for name in overloaded:
                node = self._nodes[name]
                movable = sorted(
                    node.virtuals.items(), key=lambda item: (-item[1], item[0])
                )
                for virtual, load in movable:
                    destination = self._best_destination(load, exclude=name)
                    if destination is None:
                        continue
                    del node.virtuals[virtual]
                    self._nodes[destination].virtuals[virtual] = load
                    steps.append(
                        MigrationStep(
                            virtual_server=virtual,
                            source=name,
                            destination=destination,
                            load=load,
                        )
                    )
                    progressed = True
                    break
                if progressed:
                    break
            if not progressed:
                break
        return steps
