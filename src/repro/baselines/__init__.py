"""Baseline load-distribution schemes CLASH is compared against.

* :class:`~repro.baselines.fixed_depth.FixedDepthDhtSimulator` — the paper's
  own comparator: basic Chord with a *fixed* identifier-key length
  (``DHT(2)``, ``DHT(6)``, ``DHT(12)``, ``DHT(24)``), evaluated over the same
  phased workload and reporting the same metrics as the CLASH simulator.
* :class:`~repro.baselines.virtual_server_lb.VirtualServerBalancer` — the
  virtual-server *migration* scheme of Rao et al. [13]: virtual servers move
  from overloaded physical nodes to under-loaded ones.
* :class:`~repro.baselines.power_of_d.PowerOfDChoicesPlacer` — the
  d-choices scheme of Byers et al. [5]: each object key is hashed with ``d``
  independent functions and stored at the least-loaded candidate server.

Neither related-work baseline clusters content the way CLASH does — that is
the paper's qualitative argument — and the ablation benchmark (A2 in
DESIGN.md) quantifies the difference on the same workloads.
"""

from repro.baselines.fixed_depth import FixedDepthDhtSimulator
from repro.baselines.power_of_d import PowerOfDChoicesPlacer
from repro.baselines.virtual_server_lb import VirtualServerBalancer

__all__ = [
    "FixedDepthDhtSimulator",
    "VirtualServerBalancer",
    "PowerOfDChoicesPlacer",
]
