"""Power-of-d-choices placement (Byers et al., IPTPS '03).

Each object key is hashed with ``d >= 2`` independent hash functions; the
object is stored at the least-loaded of the ``d`` candidate servers.  The
scheme smooths *object counts* extremely well for near-uniform workloads, but
— as the paper argues — it neither clusters related objects on one server
(each object lands wherever its d-way coin toss says) nor helps when a single
key group is intrinsically hot, because all replicas of the decision are made
per object, not per content region.  It is the second related-work baseline of
the A2 ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dht.ring import ChordRing
from repro.keys.hashing import HashFamily
from repro.keys.identifier import IdentifierKey
from repro.util.validation import check_positive, check_type

__all__ = ["PowerOfDChoicesPlacer", "Placement"]


@dataclass(frozen=True)
class Placement:
    """Where one object ended up.

    Attributes:
        key: The object's identifier key.
        server: The chosen (least-loaded candidate) server.
        candidates: The servers proposed by the ``d`` hash functions.
    """

    key: IdentifierKey
    server: str
    candidates: tuple[str, ...]


class PowerOfDChoicesPlacer:
    """Place objects on the least-loaded of ``d`` hash-selected candidates.

    Args:
        ring: The Chord ring providing the (hash → server) mapping.
        choices: Number of independent hash functions ``d`` (>= 1; 1 reduces
            to plain single-hash placement, useful as the control case).
    """

    def __init__(self, ring: ChordRing, choices: int = 2) -> None:
        check_type("ring", ring, ChordRing)
        check_type("choices", choices, int)
        check_positive("choices", choices)
        self._ring = ring
        self._family = HashFamily(hash_bits=ring.space.bits, count=choices)
        self._loads: dict[str, float] = {name: 0.0 for name in ring.node_names()}
        self._placements: list[Placement] = []

    @property
    def choices(self) -> int:
        """Number of hash functions used per object."""
        return len(self._family)

    def server_loads(self) -> dict[str, float]:
        """Load accumulated on every server so far."""
        return dict(self._loads)

    def placements(self) -> list[Placement]:
        """Every placement decision made so far."""
        return list(self._placements)

    def candidates_for(self, key: IdentifierKey) -> list[str]:
        """The candidate servers the ``d`` hash functions propose for a key."""
        return [self._ring.owner_of(hash_key) for hash_key in self._family.hash_key_all(key)]

    def place(self, key: IdentifierKey, load: float = 1.0) -> Placement:
        """Place one object, adding ``load`` to the chosen server."""
        if load < 0:
            raise ValueError(f"load must be non-negative, got {load}")
        candidates = self.candidates_for(key)
        chosen = min(candidates, key=lambda name: (self._loads[name], name))
        self._loads[chosen] += load
        placement = Placement(key=key, server=chosen, candidates=tuple(candidates))
        self._placements.append(placement)
        return placement

    def place_all(self, keys: list[IdentifierKey], load: float = 1.0) -> list[Placement]:
        """Place many objects in sequence."""
        return [self.place(key, load) for key in keys]

    def imbalance(self) -> float:
        """Max/mean load ratio over servers (1.0 = perfectly balanced).

        Servers with zero load still count towards the mean, matching how the
        paper discusses utilisation across the full server pool.
        """
        loads = list(self._loads.values())
        total = sum(loads)
        if total == 0:
            return 1.0
        mean_load = total / len(loads)
        return max(loads) / mean_load

    def servers_spanned(self, keys: list[IdentifierKey]) -> int:
        """How many distinct servers a set of (content-related) keys touches.

        CLASH keeps a related key group on one server whenever load permits;
        d-choices placement scatters it — this method quantifies that
        clustering loss for the ablation report.
        """
        key_set = set(keys)
        servers = set()
        for placement in self._placements:
            if placement.key in key_set:
                servers.add(placement.server)
        return len(servers)
