"""The paper's non-adaptive comparator: basic DHT with fixed key length.

``DHT(x)`` hashes every object's identifier key truncated to ``x`` bits, so
the key space is statically partitioned into ``2**x`` groups and the partition
never reacts to load.  The paper evaluates x ∈ {2, 6, 12, 24}: small x gives
acceptable average utilisation but catastrophic hotspots under skew, large x
gives near-uniform load but spreads the work so thinly that server utilisation
collapses and every server is dragged into the application.

For small ``x`` the :class:`~repro.sim.simulator.FlowSimulator` can run the
baseline directly (``fixed_depth=x``); this module provides an equivalent but
vectorised simulator that stays fast up to ``x = 24`` by enumerating the
partition at ``min(x, max_enumeration_depth)`` — beyond the enumeration depth
the extra uniform splitting only smooths per-server totals, so expectations
are unchanged (the approximation is documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ClashConfig
from repro.dht.hashspace import HashSpace
from repro.dht.ring import ChordRing
from repro.keys.keygroup import KeyGroup
from repro.sim.metrics import MetricsRecorder, PeriodSample
from repro.sim.simulator import SimulationParams, SimulationResult
from repro.util.rng import SeedSequenceFactory
from repro.util.validation import check_positive, check_type
from repro.workload.distributions import WorkloadSpec
from repro.workload.scenario import PhasedScenario

__all__ = ["FixedDepthDhtSimulator"]

DEFAULT_MAX_ENUMERATION_DEPTH = 16


@dataclass
class _Partition:
    """The static (group → server index) partition of a fixed-depth DHT."""

    depth: int
    owners: np.ndarray  # shape (2**depth,), dtype int32, server indices
    mean_lookup_hops: float


class FixedDepthDhtSimulator:
    """Simulate ``DHT(fixed_depth)`` over the paper's phased scenario.

    Args:
        config: Protocol configuration (capacity, load weights, check period).
        params: Scale parameters (shared with the CLASH simulator so the two
            are directly comparable).
        scenario: Workload schedule.
        fixed_depth: The fixed identifier-key length ``x``.
        max_enumeration_depth: Cap on the enumerated partition depth (see the
            module docstring).
    """

    def __init__(
        self,
        config: ClashConfig,
        params: SimulationParams,
        scenario: PhasedScenario,
        fixed_depth: int,
        max_enumeration_depth: int = DEFAULT_MAX_ENUMERATION_DEPTH,
    ) -> None:
        check_type("config", config, ClashConfig)
        check_type("params", params, SimulationParams)
        check_type("fixed_depth", fixed_depth, int)
        check_positive("fixed_depth", fixed_depth)
        if fixed_depth > config.key_bits:
            raise ValueError(
                f"fixed_depth must not exceed key_bits ({config.key_bits}), got {fixed_depth}"
            )
        check_positive("max_enumeration_depth", max_enumeration_depth)
        self._config = config
        self._params = params
        self._scenario = scenario
        self._fixed_depth = fixed_depth
        self._enumeration_depth = min(fixed_depth, max_enumeration_depth)
        seeds = SeedSequenceFactory(params.seed)
        self._ring = ChordRing(space=HashSpace(bits=config.hash_bits))
        ring_rng = seeds.stream("ring")
        used: set[int] = set()
        for index in range(params.server_count):
            node_id = ring_rng.randbits(config.hash_bits)
            while node_id in used:
                node_id = ring_rng.randbits(config.hash_bits)
            used.add(node_id)
            self._ring.add_node(f"s{index}", node_id=node_id)
        self._ring.stabilise()
        self._partition = self._build_partition()
        self._recorder = MetricsRecorder()

    @property
    def label(self) -> str:
        """The run's label, e.g. ``"DHT(12)"``."""
        return f"DHT({self._fixed_depth})"

    @property
    def ring(self) -> ChordRing:
        """The underlying Chord ring."""
        return self._ring

    @property
    def enumeration_depth(self) -> int:
        """The depth at which the partition is actually enumerated."""
        return self._enumeration_depth

    # ------------------------------------------------------------------ #
    # Static partition
    # ------------------------------------------------------------------ #

    def _build_partition(self) -> _Partition:
        depth = self._enumeration_depth
        names = {name: index for index, name in enumerate(sorted(self._ring.node_names()))}
        owners = np.empty(1 << depth, dtype=np.int32)
        hash_function = self._ring.hash_function
        hop_samples: list[int] = []
        sample_stride = max(1, (1 << depth) // 256)
        for prefix in range(1 << depth):
            group = KeyGroup(prefix=prefix, depth=depth, width=self._config.key_bits)
            hash_key = hash_function.hash_key(group.virtual_key)
            owners[prefix] = names[self._ring.owner_of(hash_key)]
            if prefix % sample_stride == 0:
                hop_samples.append(self._ring.find_successor(hash_key).hops)
        mean_hops = float(np.mean(hop_samples)) if hop_samples else 0.0
        return _Partition(depth=depth, owners=owners, mean_lookup_hops=mean_hops)

    def _prefix_probabilities(self, spec: WorkloadSpec) -> np.ndarray:
        """Probability mass of every enumerated prefix under ``spec``."""
        depth = self._enumeration_depth
        weights = np.asarray(spec.weights, dtype=np.float64)
        weights = weights / weights.sum()
        if depth <= spec.base_bits:
            folded = weights.reshape(1 << depth, -1).sum(axis=1)
            return folded
        expansion = 1 << (depth - spec.base_bits)
        return np.repeat(weights / expansion, expansion)

    # ------------------------------------------------------------------ #
    # Per-period evaluation
    # ------------------------------------------------------------------ #

    def _server_loads(self, spec: WorkloadSpec) -> np.ndarray:
        """Absolute load of every server under the given workload."""
        probabilities = self._prefix_probabilities(spec)
        total_rate = self._params.source_count * spec.source_rate
        group_rates = total_rate * probabilities
        rate_per_server = np.bincount(
            self._partition.owners, weights=group_rates, minlength=self._params.server_count
        )
        load = self._config.data_rate_weight * rate_per_server
        if self._params.query_client_count:
            group_queries = self._params.query_client_count * probabilities
            queries_per_server = np.bincount(
                self._partition.owners,
                weights=group_queries,
                minlength=self._params.server_count,
            )
            load = load + self._config.query_load_weight * np.log2(1.0 + queries_per_server)
        return load

    def _messages_per_server_per_second(self, spec: WorkloadSpec) -> float:
        """Signalling rate of the non-adaptive baseline.

        A basic DHT client performs one DHT lookup per virtual-stream key
        change (and per query registration); there is no depth search and no
        split/merge signalling.
        """
        key_changes_per_second = (
            self._params.source_count * spec.source_rate / self._params.mean_stream_length
        )
        query_arrivals_per_second = (
            self._params.query_client_count / self._params.mean_query_lifetime
            if self._params.query_client_count
            else 0.0
        )
        per_lookup = 2.0
        if self._config.count_routing_hops:
            per_lookup += self._partition.mean_lookup_hops
        total = (key_changes_per_second + query_arrivals_per_second) * per_lookup
        return total / self._params.server_count

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self) -> SimulationResult:
        """Run the scenario and return metrics comparable to the CLASH run."""
        period = self._config.load_check_period
        duration = self._scenario.total_duration
        capacity = self._config.server_capacity
        time = 0.0
        while time < duration:
            period_end = min(time + period, duration)
            spec = self._scenario.workload_at(time)
            loads = self._server_loads(spec)
            active = loads > 0.0
            active_count = int(np.count_nonzero(active))
            max_percent = float(100.0 * loads.max() / capacity) if active_count else 0.0
            avg_percent = (
                float(100.0 * loads[active].mean() / capacity) if active_count else 0.0
            )
            sample = PeriodSample(
                time=period_end,
                workload=spec.name,
                max_load_percent=max_percent,
                avg_load_percent=avg_percent,
                active_servers=active_count,
                min_depth=float(self._fixed_depth),
                avg_depth=float(self._fixed_depth),
                max_depth=float(self._fixed_depth),
                splits=0,
                merges=0,
                messages_per_server_per_second=self._messages_per_server_per_second(spec),
                message_breakdown={},
            )
            self._recorder.record(sample)
            time = period_end
        return SimulationResult(
            label=self.label,
            params=self._params,
            config=self._config,
            metrics=self._recorder,
            final_active_groups=1 << self._fixed_depth,
            total_splits=0,
            total_merges=0,
            notes={"enumeration_depth": float(self._enumeration_depth)},
        )
