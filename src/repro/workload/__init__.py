"""Workload generation for the CLASH evaluation.

Section 6.1 of the paper drives the system with three synthetic workloads —
A (almost uniform), B (moderately skewed) and C (highly skewed) — defined as
distributions over the 2^8 possible values of the 8-bit *base* portion of each
24-bit identifier key; the remaining 16 bits are uniform.  Data sources stream
packets at a constant rate (1 pkt/s under workload A, 2 pkt/s under B and C)
and change their key every ``Ld`` packets on average; query clients register
persistent queries with the same key skew and live for an exponentially
distributed ``Lq`` (30 minutes).

This package reproduces that workload model:

* :mod:`~repro.workload.distributions` — the three skew profiles
  (Figure 3) plus helpers for arbitrary Zipf/uniform skews.
* :class:`~repro.workload.sources.DataSource` /
  :class:`~repro.workload.sources.SourcePopulation` — key-churning data
  sources.
* :class:`~repro.workload.queries.QueryClient` /
  :class:`~repro.workload.queries.QueryPopulation` — persistent-query
  clients with exponential lifetimes.
* :class:`~repro.workload.scenario.PhasedScenario` — the 6-hour A → B → C
  schedule used by Figures 4 and 5.
"""

from repro.workload.distributions import (
    WorkloadSpec,
    skew_statistics,
    uniform_weights,
    workload_a,
    workload_b,
    workload_c,
    zipf_weights,
)
from repro.workload.queries import QueryClient, QueryPopulation
from repro.workload.scenario import PhasedScenario, ScenarioPhase, paper_scenario
from repro.workload.sources import DataSource, SourcePopulation

__all__ = [
    "WorkloadSpec",
    "workload_a",
    "workload_b",
    "workload_c",
    "uniform_weights",
    "zipf_weights",
    "skew_statistics",
    "DataSource",
    "SourcePopulation",
    "QueryClient",
    "QueryPopulation",
    "ScenarioPhase",
    "PhasedScenario",
    "paper_scenario",
]
