"""Data sources: constant-rate packet streams whose keys churn every Ld packets.

Each source holds one :class:`~repro.app.streams.VirtualStream` at a time;
when the stream's exponentially distributed length is exhausted the source
draws a new identifier key (from the current workload's skew) and starts a new
stream — which is exactly when a CLASH client must perform a fresh depth
lookup.
"""

from __future__ import annotations

from repro.app.streams import DataPacket, VirtualStream
from repro.keys.identifier import IdentifierKey, RandomKeyGenerator
from repro.util.rng import RandomStream
from repro.util.validation import check_positive, check_type
from repro.workload.distributions import WorkloadSpec

__all__ = ["DataSource", "SourcePopulation"]


class DataSource:
    """One data source producing virtual streams of packets.

    Args:
        name: Source name.
        key_generator: Generator used to draw a fresh key at each stream start.
        rate: Packet rate in packets/second.
        mean_stream_length: Mean virtual stream length ``Ld`` in packets.
        rng: Random stream for stream-length draws.
    """

    def __init__(
        self,
        name: str,
        key_generator: RandomKeyGenerator,
        rate: float,
        mean_stream_length: float,
        rng: RandomStream,
    ) -> None:
        check_positive("rate", rate)
        check_positive("mean_stream_length", mean_stream_length)
        self._name = name
        self._keygen = key_generator
        self._rate = rate
        self._mean_stream_length = mean_stream_length
        self._rng = rng
        self._stream: VirtualStream | None = None
        self.streams_started = 0

    @property
    def name(self) -> str:
        """The source's name."""
        return self._name

    @property
    def rate(self) -> float:
        """Packet rate in packets per second."""
        return self._rate

    @property
    def current_key(self) -> IdentifierKey | None:
        """The key of the current virtual stream (``None`` before the first)."""
        return self._stream.key if self._stream is not None else None

    def set_rate(self, rate: float) -> None:
        """Change the packet rate (workload phases differ in rate)."""
        check_positive("rate", rate)
        self._rate = rate

    def start_stream(self, now: float = 0.0) -> VirtualStream:
        """Begin a new virtual stream with a freshly drawn key.

        Returns the new stream; the caller is responsible for performing the
        CLASH lookup the key change requires.
        """
        key = self._keygen.generate()
        self._stream = VirtualStream(
            source=self._name,
            key=key,
            rate=self._rate,
            mean_length=self._mean_stream_length,
            rng=self._rng,
            started_at=now,
        )
        self.streams_started += 1
        return self._stream

    def next_packet(self, now: float = 0.0) -> tuple[DataPacket, bool]:
        """Produce the next packet, starting a new stream when needed.

        Returns ``(packet, key_changed)`` where ``key_changed`` is True when
        the packet begins a new virtual stream (and hence a new lookup is
        required).
        """
        key_changed = False
        if self._stream is None or self._stream.exhausted:
            self.start_stream(now)
            key_changed = True
        assert self._stream is not None
        return self._stream.next_packet(), key_changed

    def expected_key_change_rate(self) -> float:
        """Expected key changes per second (``rate / Ld``)."""
        return self._rate / self._mean_stream_length


class SourcePopulation:
    """A population of data sources sharing one workload specification.

    For the paper-scale flow simulation, per-source state is unnecessary —
    the population exposes the aggregate quantities the simulator needs
    (total rate, expected key changes per interval) — while
    :meth:`materialise` builds real :class:`DataSource` objects for the
    event-driven simulator and the examples.
    """

    def __init__(
        self,
        count: int,
        spec: WorkloadSpec,
        key_bits: int,
        mean_stream_length: float,
        rng: RandomStream,
    ) -> None:
        check_type("count", count, int)
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        check_positive("mean_stream_length", mean_stream_length)
        if spec.base_bits > key_bits:
            raise ValueError(
                f"workload base_bits ({spec.base_bits}) exceeds key_bits ({key_bits})"
            )
        self._count = count
        self._spec = spec
        self._key_bits = key_bits
        self._mean_stream_length = mean_stream_length
        self._rng = rng

    @property
    def count(self) -> int:
        """Number of sources in the population."""
        return self._count

    @property
    def spec(self) -> WorkloadSpec:
        """The workload specification currently driving the population."""
        return self._spec

    @property
    def mean_stream_length(self) -> float:
        """Mean virtual stream length Ld in packets."""
        return self._mean_stream_length

    def switch_workload(self, spec: WorkloadSpec) -> None:
        """Switch to a different workload phase (keys and rates change)."""
        if spec.base_bits != self._spec.base_bits:
            raise ValueError("cannot switch to a workload with different base_bits")
        self._spec = spec

    def total_rate(self) -> float:
        """Aggregate packet rate of the whole population (packets/second)."""
        return self._count * self._spec.source_rate

    def expected_key_changes(self, interval: float) -> float:
        """Expected number of virtual-stream starts during ``interval`` seconds."""
        check_positive("interval", interval)
        return self._count * self._spec.source_rate * interval / self._mean_stream_length

    def make_key_generator(self) -> RandomKeyGenerator:
        """A key generator drawing keys with the population's current skew."""
        return RandomKeyGenerator(
            width=self._key_bits,
            base_bits=self._spec.base_bits,
            rng=self._rng,
            base_weights=self._spec.weights,
        )

    def materialise(self, prefix: str = "src") -> list[DataSource]:
        """Create concrete :class:`DataSource` objects (event-driven simulation)."""
        generator = self.make_key_generator()
        return [
            DataSource(
                name=f"{prefix}{index}",
                key_generator=generator,
                rate=self._spec.source_rate,
                mean_stream_length=self._mean_stream_length,
                rng=self._rng,
            )
            for index in range(self._count)
        ]
