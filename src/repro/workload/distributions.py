"""The three workload skew profiles of Figure 3, plus generic skew helpers.

The paper plots, for each workload, how many clients pick each of the 2^8
base-key values.  Workload A is "almost uniform", workload B moderately
skewed and workload C sharply peaked (the hottest handful of base values
carry a quarter or more of all traffic, which is what drives the DHT(6)
baseline to ~25× a single server's capacity).  The exact curves were not
published, so the profiles below are synthetic reconstructions with the same
qualitative shapes and ordering; `skew_statistics` quantifies them so the
Figure 3 benchmark can report the skew explicitly.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field

from repro.util.validation import check_positive, check_type

__all__ = [
    "WorkloadSpec",
    "uniform_weights",
    "zipf_weights",
    "workload_a",
    "workload_b",
    "workload_c",
    "skew_statistics",
]

DEFAULT_BASE_BITS = 8
"""The paper's X = 8 skewed base bits."""


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: a base-value skew plus a per-source packet rate.

    Attributes:
        name: Workload label ("A", "B", "C", or custom).
        base_bits: Number of base bits the weights cover (2**base_bits values).
        weights: Unnormalised weights over the base values.
        source_rate: Packets per second emitted by each data source.
    """

    name: str
    base_bits: int
    weights: tuple[float, ...]
    source_rate: float

    def __post_init__(self) -> None:
        check_type("name", self.name, str)
        check_type("base_bits", self.base_bits, int)
        check_positive("base_bits", self.base_bits)
        check_positive("source_rate", self.source_rate)
        if len(self.weights) != (1 << self.base_bits):
            raise ValueError(
                f"weights must have {1 << self.base_bits} entries, got {len(self.weights)}"
            )
        if any(weight < 0 for weight in self.weights):
            raise ValueError("weights must be non-negative")
        if sum(self.weights) <= 0:
            raise ValueError("weights must sum to a positive value")

    @functools.cached_property
    def total_weight(self) -> float:
        """Sum of the unnormalised weights (computed once; the spec is frozen).

        ``cached_property`` stores the value in the instance ``__dict__``,
        which bypasses the frozen dataclass's ``__setattr__`` and leaves
        equality and hashing (field-based) untouched.
        """
        return float(sum(self.weights))

    def probability(self, base_value: int) -> float:
        """The probability a client picks the given base value."""
        if not 0 <= base_value < len(self.weights):
            raise ValueError(
                f"base_value must be in [0, {len(self.weights)}), got {base_value}"
            )
        return self.weights[base_value] / self.total_weight

    def prefix_probability(self, prefix: int, depth: int) -> float:
        """Probability mass of keys whose first ``depth`` bits equal ``prefix``.

        ``depth`` may be smaller than ``base_bits`` (the prefix aggregates
        several base values) or larger (the excess bits are uniform, so the
        base value's mass is divided evenly among its sub-prefixes).
        """
        if depth < 0:
            raise ValueError(f"depth must be non-negative, got {depth}")
        if not 0 <= prefix < (1 << depth):
            raise ValueError(f"prefix {prefix} does not fit in {depth} bits")
        if depth <= self.base_bits:
            shift = self.base_bits - depth
            start = prefix << shift
            end = (prefix + 1) << shift
            mass = sum(self.weights[start:end])
            return mass / self.total_weight
        base_value = prefix >> (depth - self.base_bits)
        excess = depth - self.base_bits
        return self.probability(base_value) / (1 << excess)

    def expected_counts(self, population: int) -> list[float]:
        """Expected number of clients per base value for a given population size.

        This is exactly what Figure 3 plots.
        """
        if population < 0:
            raise ValueError(f"population must be non-negative, got {population}")
        total = self.total_weight
        return [population * weight / total for weight in self.weights]


def uniform_weights(base_bits: int = DEFAULT_BASE_BITS) -> tuple[float, ...]:
    """Exactly uniform weights over the base values."""
    check_positive("base_bits", base_bits)
    return tuple(1.0 for _ in range(1 << base_bits))


def zipf_weights(base_bits: int = DEFAULT_BASE_BITS, exponent: float = 1.0) -> tuple[float, ...]:
    """Zipf-distributed weights (rank 1 is base value 0)."""
    check_positive("base_bits", base_bits)
    check_positive("exponent", exponent)
    return tuple(1.0 / (rank ** exponent) for rank in range(1, (1 << base_bits) + 1))


def _gaussian_bump(
    base_bits: int, baseline: float, amplitude: float, centre: int, width: float
) -> tuple[float, ...]:
    values = []
    for index in range(1 << base_bits):
        values.append(
            baseline + amplitude * math.exp(-((index - centre) ** 2) / (2.0 * width ** 2))
        )
    return tuple(values)


def workload_a(base_bits: int = DEFAULT_BASE_BITS) -> WorkloadSpec:
    """Workload A: almost uniform, sources stream at 1 packet/second."""
    count = 1 << base_bits
    weights = tuple(
        1.0 + 0.05 * math.cos(2.0 * math.pi * index / count) for index in range(count)
    )
    return WorkloadSpec(name="A", base_bits=base_bits, weights=weights, source_rate=1.0)


def workload_b(base_bits: int = DEFAULT_BASE_BITS) -> WorkloadSpec:
    """Workload B: moderately skewed (a broad hot region), 2 packets/second."""
    count = 1 << base_bits
    weights = _gaussian_bump(
        base_bits,
        baseline=0.5,
        amplitude=2.5,
        centre=int(count * 0.375),
        width=count / 8.0,
    )
    return WorkloadSpec(name="B", base_bits=base_bits, weights=weights, source_rate=2.0)


def workload_c(base_bits: int = DEFAULT_BASE_BITS) -> WorkloadSpec:
    """Workload C: highly skewed (a sharp hot spot), 2 packets/second.

    The hottest few base values carry roughly a quarter of the total mass,
    which reproduces the paper's observation that a fixed-depth DHT(6)
    concentrates up to ~25× a server's capacity on one node.
    """
    count = 1 << base_bits
    weights = _gaussian_bump(
        base_bits,
        baseline=0.1,
        amplitude=25.0,
        centre=int(count * 0.625),
        width=count / 51.2,
    )
    return WorkloadSpec(name="C", base_bits=base_bits, weights=weights, source_rate=2.0)


def skew_statistics(spec: WorkloadSpec) -> dict[str, float]:
    """Quantify a workload's skew.

    Returns the max/mean weight ratio, the share of the hottest base value,
    the share of the hottest 4 contiguous values (the granularity a 6-bit
    fixed-depth DHT sees when the base is 8 bits) and the normalised entropy.
    """
    weights = spec.weights
    total = spec.total_weight
    count = len(weights)
    mean_weight = total / count
    hottest = max(weights)
    hottest_share = hottest / total
    window = max(1, count // 64)
    hottest_window_share = max(
        sum(weights[start : start + window]) / total
        for start in range(0, count - window + 1)
    )
    entropy = 0.0
    for weight in weights:
        if weight > 0:
            probability = weight / total
            entropy -= probability * math.log2(probability)
    return {
        "max_over_mean": hottest / mean_weight,
        "hottest_share": hottest_share,
        "hottest_window_share": hottest_window_share,
        "normalised_entropy": entropy / math.log2(count),
    }
