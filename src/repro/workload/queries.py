"""Query clients: persistent continuous queries with exponential lifetimes.

The paper's Figure 5 case (B) adds 50,000 query clients, each registering a
long-lived query whose key follows the same skew as the data sources and whose
lifetime is exponentially distributed with mean ``Lq`` = 30 minutes.  Stored
queries are what migrates (state transfer) when key groups split or merge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.query_store import Query
from repro.keys.identifier import IdentifierKey, RandomKeyGenerator
from repro.util.rng import RandomStream
from repro.util.validation import check_positive, check_type
from repro.workload.distributions import WorkloadSpec

__all__ = ["QueryClient", "QueryPopulation"]


@dataclass
class QueryClient:
    """One query client and the query it currently has registered.

    Attributes:
        name: Client name.
        key: The identifier key (content region) the query targets.
        registered_at: Simulation time the query was registered.
        expires_at: Simulation time the query's lifetime ends.
    """

    name: str
    key: IdentifierKey
    registered_at: float
    expires_at: float

    def to_query(self, query_id: int) -> Query:
        """The :class:`~repro.app.query_store.Query` object servers store."""
        return Query(
            query_id=query_id, key=self.key, client=self.name, expires_at=self.expires_at
        )


class QueryPopulation:
    """A population of query clients in demographic steady state.

    With ``count`` clients and mean lifetime ``Lq``, the expected number of
    query arrivals (and departures) per interval of length ``T`` is
    ``count * T / Lq`` — each arrival requires a CLASH depth lookup and each
    stored query contributes to the logarithmic term of its server's load.
    """

    def __init__(
        self,
        count: int,
        spec: WorkloadSpec,
        key_bits: int,
        mean_lifetime: float,
        rng: RandomStream,
    ) -> None:
        check_type("count", count, int)
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        check_positive("mean_lifetime", mean_lifetime)
        if spec.base_bits > key_bits:
            raise ValueError(
                f"workload base_bits ({spec.base_bits}) exceeds key_bits ({key_bits})"
            )
        self._count = count
        self._spec = spec
        self._key_bits = key_bits
        self._mean_lifetime = mean_lifetime
        self._rng = rng
        self._next_client_id = 0

    @property
    def count(self) -> int:
        """Steady-state number of active query clients."""
        return self._count

    @property
    def spec(self) -> WorkloadSpec:
        """The workload skew queries are drawn with."""
        return self._spec

    @property
    def mean_lifetime(self) -> float:
        """Mean query lifetime Lq in seconds."""
        return self._mean_lifetime

    def switch_workload(self, spec: WorkloadSpec) -> None:
        """Switch the skew used for newly arriving queries."""
        if spec.base_bits != self._spec.base_bits:
            raise ValueError("cannot switch to a workload with different base_bits")
        self._spec = spec

    def expected_arrivals(self, interval: float) -> float:
        """Expected query arrivals (= departures, in steady state) per interval."""
        check_positive("interval", interval)
        return self._count * interval / self._mean_lifetime

    def make_key_generator(self) -> RandomKeyGenerator:
        """A key generator drawing query keys with the population's skew."""
        return RandomKeyGenerator(
            width=self._key_bits,
            base_bits=self._spec.base_bits,
            rng=self._rng,
            base_weights=self._spec.weights,
        )

    def spawn_clients(self, count: int, now: float) -> list[QueryClient]:
        """Create ``count`` new query clients with freshly drawn keys and lifetimes."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        generator = self.make_key_generator()
        clients = []
        for _ in range(count):
            client = QueryClient(
                name=f"q{self._next_client_id}",
                key=generator.generate(),
                registered_at=now,
                expires_at=now + self._rng.exponential(self._mean_lifetime),
            )
            self._next_client_id += 1
            clients.append(client)
        return clients

    def initial_clients(self, now: float = 0.0) -> list[QueryClient]:
        """The steady-state population present at the start of a simulation."""
        return self.spawn_clients(self._count, now)
