"""Phased workload scenarios (the paper's 6-hour A → B → C schedule).

Beyond the workload skew itself, each phase can carry environment knobs the
event-driven transport and the simulator react to:

* ``fail_servers`` — how many randomly chosen servers abruptly fail when the
  phase begins (churn; recovery follows
  :meth:`~repro.core.protocol.ClashSystem.handle_server_failure`).
* ``join_rate`` / ``fail_rate`` — Poisson-arrival churn *within* the phase:
  servers join (:meth:`~repro.core.protocol.ClashSystem.handle_server_join`)
  and fail at seeded exponential inter-arrival times, scheduled as mid-phase
  events on the simulation engine for the event transport and drained at
  period boundaries for the inline/batching transports.
* ``link_latency`` — a per-phase one-way message latency override, applied to
  the event transport's latency model for the duration of the phase.

All default to "off", so existing scenarios are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive
from repro.workload.distributions import (
    WorkloadSpec,
    workload_a,
    workload_b,
    workload_c,
)

__all__ = [
    "ScenarioPhase",
    "PhasedScenario",
    "paper_scenario",
    "churn_latency_scenario",
]


@dataclass(frozen=True)
class ScenarioPhase:
    """One phase of a workload scenario.

    Attributes:
        spec: The workload active during the phase.
        duration: Phase length in seconds.
        fail_servers: Number of randomly selected servers that fail at the
            start of the phase (0 = no churn).
        join_rate: Poisson arrival rate (events/sec) of servers *joining*
            mid-phase; inter-arrival times are exponential draws from the
            simulator's seeded churn streams (0 = no joins).
        fail_rate: Poisson arrival rate (events/sec) of abrupt server
            *failures* mid-phase (0 = no mid-phase failures;
            ``fail_servers`` remains the phase-entry special case).
        link_latency: One-way message latency in seconds enforced while the
            phase is active (``None`` = keep the transport's current model).
    """

    spec: WorkloadSpec
    duration: float
    fail_servers: int = 0
    join_rate: float = 0.0
    fail_rate: float = 0.0
    link_latency: float | None = None

    def __post_init__(self) -> None:
        check_positive("duration", self.duration)
        if self.fail_servers < 0:
            raise ValueError(
                f"fail_servers must be non-negative, got {self.fail_servers}"
            )
        check_non_negative("join_rate", self.join_rate)
        check_non_negative("fail_rate", self.fail_rate)
        if self.link_latency is not None:
            check_non_negative("link_latency", self.link_latency)


class PhasedScenario:
    """A piecewise-constant sequence of workloads.

    The paper runs workload A for the first two hours, workload B for the next
    two and workload C for the final two (:func:`paper_scenario`); arbitrary
    schedules can be constructed for other experiments.
    """

    def __init__(self, phases: list[ScenarioPhase]) -> None:
        if not phases:
            raise ValueError("a scenario needs at least one phase")
        base_bits = phases[0].spec.base_bits
        if any(phase.spec.base_bits != base_bits for phase in phases):
            raise ValueError("all phases must use the same number of base bits")
        self._phases = list(phases)

    @property
    def phases(self) -> list[ScenarioPhase]:
        """The scenario's phases in order."""
        return list(self._phases)

    @property
    def total_duration(self) -> float:
        """Total scenario length in seconds."""
        return sum(phase.duration for phase in self._phases)

    def workload_at(self, time: float) -> WorkloadSpec:
        """The workload active at an absolute simulation time.

        Times at or beyond the end of the scenario return the final workload,
        so simulations may run slightly past the nominal duration.
        """
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        elapsed = 0.0
        for phase in self._phases:
            elapsed += phase.duration
            if time < elapsed:
                return phase.spec
        return self._phases[-1].spec

    def phase_index_at(self, time: float) -> int:
        """Index of the phase active at an absolute simulation time."""
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        elapsed = 0.0
        for index, phase in enumerate(self._phases):
            elapsed += phase.duration
            if time < elapsed:
                return index
        return len(self._phases) - 1

    def phase_boundaries(self) -> list[float]:
        """Absolute start times of every phase."""
        boundaries = [0.0]
        for phase in self._phases[:-1]:
            boundaries.append(boundaries[-1] + phase.duration)
        return boundaries

    def phase_at(self, index: int) -> ScenarioPhase:
        """The phase with the given index."""
        return self._phases[index]


def paper_scenario(
    base_bits: int = 8,
    phase_duration: float = 7200.0,
    join_rate: float = 0.0,
    fail_rate: float = 0.0,
) -> PhasedScenario:
    """The paper's evaluation scenario: 2 hours each of workloads A, B and C.

    ``join_rate`` / ``fail_rate`` apply the same Poisson churn rates to every
    phase; both default to 0, which keeps the scenario identical to the
    paper's churn-free schedule.
    """
    return PhasedScenario(
        [
            ScenarioPhase(
                spec=spec,
                duration=phase_duration,
                join_rate=join_rate,
                fail_rate=fail_rate,
            )
            for spec in (
                workload_a(base_bits),
                workload_b(base_bits),
                workload_c(base_bits),
            )
        ]
    )


def churn_latency_scenario(
    base_bits: int = 8,
    phase_duration: float = 7200.0,
    fail_servers: tuple[int, int, int] = (0, 2, 0),
    link_latency: tuple[float | None, float | None, float | None] = (
        0.005,
        0.02,
        0.05,
    ),
) -> PhasedScenario:
    """An A → B → C scenario with churn and rising per-phase link latency.

    The defaults model a deployment that degrades as it heats up: cheap links
    under the uniform workload, a couple of node failures and slower links
    when the moderate skew arrives, and WAN-like latency during the hot-spot
    phase.  Designed for the event transport; with the inline transport the
    latency knobs are ignored and only churn takes effect.
    """
    specs = (workload_a(base_bits), workload_b(base_bits), workload_c(base_bits))
    return PhasedScenario(
        [
            ScenarioPhase(
                spec=spec,
                duration=phase_duration,
                fail_servers=fails,
                link_latency=latency,
            )
            for spec, fails, latency in zip(specs, fail_servers, link_latency)
        ]
    )
