"""Phased workload scenarios (the paper's 6-hour A → B → C schedule)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive
from repro.workload.distributions import (
    WorkloadSpec,
    workload_a,
    workload_b,
    workload_c,
)

__all__ = ["ScenarioPhase", "PhasedScenario", "paper_scenario"]


@dataclass(frozen=True)
class ScenarioPhase:
    """One phase of a workload scenario.

    Attributes:
        spec: The workload active during the phase.
        duration: Phase length in seconds.
    """

    spec: WorkloadSpec
    duration: float

    def __post_init__(self) -> None:
        check_positive("duration", self.duration)


class PhasedScenario:
    """A piecewise-constant sequence of workloads.

    The paper runs workload A for the first two hours, workload B for the next
    two and workload C for the final two (:func:`paper_scenario`); arbitrary
    schedules can be constructed for other experiments.
    """

    def __init__(self, phases: list[ScenarioPhase]) -> None:
        if not phases:
            raise ValueError("a scenario needs at least one phase")
        base_bits = phases[0].spec.base_bits
        if any(phase.spec.base_bits != base_bits for phase in phases):
            raise ValueError("all phases must use the same number of base bits")
        self._phases = list(phases)

    @property
    def phases(self) -> list[ScenarioPhase]:
        """The scenario's phases in order."""
        return list(self._phases)

    @property
    def total_duration(self) -> float:
        """Total scenario length in seconds."""
        return sum(phase.duration for phase in self._phases)

    def workload_at(self, time: float) -> WorkloadSpec:
        """The workload active at an absolute simulation time.

        Times at or beyond the end of the scenario return the final workload,
        so simulations may run slightly past the nominal duration.
        """
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        elapsed = 0.0
        for phase in self._phases:
            elapsed += phase.duration
            if time < elapsed:
                return phase.spec
        return self._phases[-1].spec

    def phase_index_at(self, time: float) -> int:
        """Index of the phase active at an absolute simulation time."""
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        elapsed = 0.0
        for index, phase in enumerate(self._phases):
            elapsed += phase.duration
            if time < elapsed:
                return index
        return len(self._phases) - 1

    def phase_boundaries(self) -> list[float]:
        """Absolute start times of every phase."""
        boundaries = [0.0]
        for phase in self._phases[:-1]:
            boundaries.append(boundaries[-1] + phase.duration)
        return boundaries


def paper_scenario(
    base_bits: int = 8, phase_duration: float = 7200.0
) -> PhasedScenario:
    """The paper's evaluation scenario: 2 hours each of workloads A, B and C."""
    return PhasedScenario(
        [
            ScenarioPhase(spec=workload_a(base_bits), duration=phase_duration),
            ScenarioPhase(spec=workload_b(base_bits), duration=phase_duration),
            ScenarioPhase(spec=workload_c(base_bits), duration=phase_duration),
        ]
    )
