"""Measure line coverage of ``src/repro`` with the stdlib only.

CI runs the real thing (``pytest --cov=repro --cov-fail-under=N``); this tool
exists for environments where ``pytest-cov``/``coverage`` are not installed —
it is how the committed coverage floor was derived, and what ``make coverage``
falls back to.  The measurement is a plain ``sys.settrace`` line tracer over
the test run:

* *executable lines* of a module are the union of ``co_lines()`` over every
  code object compiled from the file (closely matching coverage.py's notion),
  minus lines marked ``pragma: no cover``;
* *covered lines* are the line events observed while running the suite.

The two tools agree to within about a point, which is why the enforced floor
keeps a one-point margin below the measured value.

Usage::

    PYTHONPATH=src python tools/coverage_floor.py [--fail-under PCT] [pytest args...]
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
TARGET = str(SRC_ROOT / "repro")

if str(SRC_ROOT) not in sys.path:
    sys.path.insert(0, str(SRC_ROOT))

_hits: dict[str, set[int]] = {}


def _global_tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(TARGET):
        return None
    lines = _hits.setdefault(filename, set())

    def local_tracer(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local_tracer

    if event == "call":
        lines.add(frame.f_lineno)
    return local_tracer


def _executable_lines(path: pathlib.Path) -> set[int]:
    source = path.read_text(encoding="utf-8")
    try:
        code = compile(source, str(path), "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _start, _end, line in obj.co_lines() if line)
        stack.extend(const for const in obj.co_consts if hasattr(const, "co_lines"))
    excluded = {
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if "pragma: no cover" in text
    }
    return lines - excluded


def main(argv: list[str]) -> int:
    import pytest

    fail_under: float | None = None
    if argv and argv[0] == "--fail-under":
        if len(argv) < 2:
            print("--fail-under requires a percentage", file=sys.stderr)
            return 2
        fail_under = float(argv[1])
        argv = argv[2:]

    sys.settrace(_global_tracer)
    try:
        exit_code = pytest.main(["-q", *argv] if argv else ["-q", "tests"])
    finally:
        sys.settrace(None)
    if exit_code != 0:
        print(f"[coverage-floor] test run failed (exit {exit_code})", file=sys.stderr)
        return int(exit_code)
    total_executable = 0
    total_covered = 0
    rows: list[tuple[str, int, int]] = []
    for path in sorted(pathlib.Path(TARGET).rglob("*.py")):
        executable = _executable_lines(path)
        covered = executable & _hits.get(str(path), set())
        total_executable += len(executable)
        total_covered += len(covered)
        rows.append((str(path.relative_to(REPO_ROOT)), len(covered), len(executable)))
    print()
    for name, covered, executable in rows:
        percent = 100.0 * covered / executable if executable else 100.0
        print(f"{name:<55} {covered:>5}/{executable:<5} {percent:6.1f}%")
    percent = 100.0 * total_covered / total_executable if total_executable else 100.0
    print(f"\nTOTAL: {total_covered}/{total_executable} lines = {percent:.2f}%")
    if fail_under is not None and percent < fail_under:
        print(
            f"[coverage-floor] FAIL: {percent:.2f}% is below the floor "
            f"({fail_under:.2f}%)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
